// Package rdd implements the Spark-style dataset engine CSTF runs on:
// typed, partitioned, lazily materialized datasets with narrow
// transformations (map, filter, mapValues), wide transformations backed by
// hash shuffles (partitionBy, join, reduceByKey), persist/unpersist
// caching, and actions (collect, count, aggregate).
//
// Execution is real — partition closures run the actual arithmetic on a
// host goroutine pool — while time and traffic are charged to the simulated
// cluster (internal/cluster). Shuffle bytes are classified remote vs local
// by comparing the source and destination partitions' host nodes, exactly
// like Spark's shuffle-read metrics that the paper's Section 6.5 reports.
//
// Deliberate deviation from Spark: a materialized dataset is memoized even
// when not persisted (its cost is charged exactly once), rather than being
// recomputed from lineage on reuse. Every algorithm in this repository
// persists anything it reads twice, so the accounting is identical; the
// memoization only prevents accidental recompute storms.
package rdd

import (
	"fmt"

	"cstf/internal/cluster"
)

// KV is a key-value record, the unit of Spark's pair-RDD operations.
type KV[K comparable, V any] struct {
	Key K
	Val V
}

// Pair is the value type produced by Join.
type Pair[A, B any] struct {
	A A
	B B
}

// Context owns the simulated cluster and the partitioning discipline.
// All datasets of one computation share a context, so co-partitioned joins
// line up (same partition count, same key hash).
type Context struct {
	Cluster *cluster.Cluster
	Parts   int // partitions per dataset
	nextID  int

	resilient bool                     // lineage recovery enabled (EnableRecovery)
	registry  map[recoverable]struct{} // persisted datasets exposed to node crashes
	needPart  []bool                   // during recovery: partitions whose cost to charge
}

// recoverable is the registry's view of a persisted dataset of any type.
type recoverable interface {
	loseNode(node int)
}

// EnableRecovery subscribes the context to the cluster's node-crash events:
// a crash drops every persisted partition hosted on the dead node, and lost
// partitions are recomputed from retained lineage (under the "Recovery"
// phase, charging only the rebuilt partitions) the next time they are read.
//
// Scope of the fault model: only *persisted* partitions are exposed to
// crashes. Materialized-but-unpersisted intermediates stay memoized, which
// models shuffle files and driver-held results surviving on healthy nodes —
// an extension of the package's documented memoization deviation. After
// recovery is enabled, Unpersist retires a dataset permanently (its lineage
// and data are dropped); reading it afterwards panics.
func (ctx *Context) EnableRecovery() {
	if ctx.resilient {
		return
	}
	ctx.resilient = true
	ctx.registry = map[recoverable]struct{}{}
	ctx.Cluster.OnNodeCrash(func(node int) {
		for d := range ctx.registry {
			d.loseNode(node)
		}
	})
}

// runOutputStage charges a stage whose tasks are indexed by destination
// partition. During lineage recovery, only the partitions being rebuilt are
// charged; everywhere else it is RunStage.
func (ctx *Context) runOutputStage(wide bool, tasks []cluster.Task) {
	if ctx.needPart != nil && len(tasks) == ctx.Parts {
		filtered := make([]cluster.Task, 0, len(tasks))
		for p := range tasks {
			if ctx.needPart[p] {
				filtered = append(filtered, tasks[p])
			}
		}
		tasks = filtered
	}
	ctx.Cluster.RunStage(wide, tasks)
}

// NewContext creates an execution context with the given partition count.
// Spark guidance is 2-3 tasks per core; experiments use nodes*cores.
func NewContext(c *cluster.Cluster, parts int) *Context {
	if parts <= 0 {
		panic("rdd: partition count must be positive")
	}
	return &Context{Cluster: c, Parts: parts}
}

func (ctx *Context) id() int {
	ctx.nextID++
	return ctx.nextID
}

// Dataset is a partitioned collection of T records (an RDD).
type Dataset[T any] struct {
	ctx    *Context
	name   string
	sizeOf func(T) int // wire size of one record, for shuffle accounting

	parts    [][]T
	computed bool
	compute  func() [][]T // nil after materialization (releases lineage)

	keyed      bool // hash-partitioned by key (KV datasets only)
	cached     bool
	serialized bool // cached at the serialized storage level

	// Fault-recovery state (resilient contexts only).
	lineage   func() [][]T // retained compute closure for recomputation
	lost      []bool       // partitions destroyed by a node crash
	lostCount int
	retired   bool // unpersisted and dropped; reads are a bug
}

// Name returns the dataset's debug name.
func (d *Dataset[T]) Name() string { return d.name }

// Parts returns the partition count.
func (d *Dataset[T]) Parts() int { return d.ctx.Parts }

// Context returns the owning context.
func (d *Dataset[T]) Context() *Context { return d.ctx }

// KeyPartitioned reports whether the dataset is hash-partitioned by key.
func (d *Dataset[T]) KeyPartitioned() bool { return d.keyed }

func newDataset[T any](ctx *Context, name string, sizeOf func(T) int) *Dataset[T] {
	if sizeOf == nil {
		panic("rdd: nil sizeOf for dataset " + name)
	}
	return &Dataset[T]{ctx: ctx, name: fmt.Sprintf("%s#%d", name, ctx.id()), sizeOf: sizeOf}
}

// materialize computes the dataset if needed and returns its partitions.
// On resilient contexts it also rebuilds any partitions lost to a node
// crash before handing data to the caller.
func (d *Dataset[T]) materialize() [][]T {
	if d.retired {
		panic("rdd: dataset read after Unpersist retired it: " + d.name)
	}
	if !d.computed {
		if d.compute == nil {
			panic("rdd: dataset has neither data nor lineage: " + d.name)
		}
		if d.ctx.resilient {
			// Keep the closure so lost partitions can be recomputed; the
			// chain is broken when the dataset is unpersisted (retired).
			d.lineage = d.compute
		}
		d.parts = d.compute()
		if len(d.parts) != d.ctx.Parts {
			panic("rdd: compute returned wrong partition count for " + d.name)
		}
		d.computed = true
		d.compute = nil // release lineage so old iterations can be collected
	}
	if d.lostCount > 0 {
		d.recover()
	}
	return d.parts
}

// loseNode implements recoverable: a node crash destroys every partition of
// this (persisted) dataset hosted on the dead node. Called at a stage
// boundary, never mid-closure, so no in-flight stage observes nil data.
func (d *Dataset[T]) loseNode(node int) {
	if !d.computed || d.retired {
		return
	}
	for p := range d.parts {
		if d.ctx.Cluster.NodeOf(p) == node && !d.lost[p] {
			d.parts[p] = nil
			d.lost[p] = true
			d.lostCount++
		}
	}
}

// recover rebuilds the lost partitions by re-running the retained lineage
// closure under the Recovery phase. The recompute executes in full on the
// host (ancestors are memoized or themselves recovering), but only the lost
// partitions' modeled cost is charged, via the context's needPart filter;
// recovered cached partitions are re-charged to executor memory on the
// replacement node.
func (d *Dataset[T]) recover() {
	if d.lineage == nil {
		panic("rdd: lost partitions but no lineage retained: " + d.name)
	}
	ctx := d.ctx
	cl := ctx.Cluster
	oldPhase := cl.Phase()
	cl.SetPhase(cluster.PhaseRecovery)
	oldNeed := ctx.needPart
	need := make([]bool, ctx.Parts)
	recovered := 0
	for p, l := range d.lost {
		if l {
			need[p] = true
			recovered++
		}
	}
	ctx.needPart = need
	parts := d.lineage()
	ctx.needPart = oldNeed
	cl.SetPhase(oldPhase)

	for p := range d.lost {
		if !d.lost[p] {
			continue
		}
		d.parts[p] = parts[p]
		d.lost[p] = false
		if d.cached {
			var b float64
			for i := range parts[p] {
				b += float64(d.sizeOf(parts[p][i]))
			}
			if d.serialized {
				cl.AddCachedSerialized(p, b)
			} else {
				cl.AddCached(p, b)
			}
		}
	}
	d.lostCount = 0
	cl.NoteRecomputed(recovered)
}

// byteSize returns the accounted size of all records currently held.
func (d *Dataset[T]) byteSize() float64 {
	var s float64
	for _, p := range d.parts {
		for i := range p {
			s += float64(d.sizeOf(p[i]))
		}
	}
	return s
}

// Eval forces materialization (running any pending lineage now, under the
// cluster's current metrics phase) without the extra read stage an action
// like Count would add. Algorithms use it to pin a computation to the
// phase label it belongs to, the way Spark's UI attributes stages to jobs.
func (d *Dataset[T]) Eval() *Dataset[T] {
	d.materialize()
	return d
}

// Persist marks the dataset as cached in executor memory at the RAW
// (deserialized) storage level, the choice CSTF makes for iterative tensor
// algorithms (Section 4.1, "Caching"): fast reads, larger footprint. The
// dataset is materialized now and its bytes are charged to the hosting
// nodes' memory, feeding the GC-pressure term of the cost model. Returns d
// for chaining.
func (d *Dataset[T]) Persist() *Dataset[T] {
	return d.persist(false)
}

// PersistSerialized caches at the SERIALIZED storage level
// (MEMORY_ONLY_SER): the footprint is the wire size, but every downstream
// read of the cached partitions pays a per-record decode cost. The paper
// discusses this trade-off and picks raw caching; the ablation experiment
// measures both.
func (d *Dataset[T]) PersistSerialized() *Dataset[T] {
	return d.persist(true)
}

func (d *Dataset[T]) persist(serialized bool) *Dataset[T] {
	d.materialize()
	if d.cached {
		return d
	}
	d.cached = true
	d.serialized = serialized
	if d.ctx.resilient {
		// Persisted partitions live in executor memory, so they are the
		// ones a node crash destroys; expose them to the crash listener.
		if d.lost == nil {
			d.lost = make([]bool, d.ctx.Parts)
		}
		d.ctx.registry[d] = struct{}{}
	}
	for p := range d.parts {
		var b float64
		for i := range d.parts[p] {
			b += float64(d.sizeOf(d.parts[p][i]))
		}
		if serialized {
			d.ctx.Cluster.AddCachedSerialized(p, b)
		} else {
			d.ctx.Cluster.AddCached(p, b)
		}
	}
	return d
}

// readCost is the per-record cost multiplier downstream operations pay to
// read this dataset's partitions (decoding serialized cached data).
func (d *Dataset[T]) readCost() float64 {
	if d.cached && d.serialized {
		if f := d.ctx.Cluster.Profile.DeserFactor; f > 0 {
			return f
		}
	}
	return 1
}

// Unpersist releases the dataset's claim on executor memory. CSTF-QCOO
// calls this on the previous MTTKRP's queue RDD (Section 4.2, "Caching").
// On a resilient context, unpersisting also retires the dataset — its data
// and lineage are dropped for good (the engine's convention is that an
// unpersisted dataset is never read again), which is what keeps retained
// lineage chains from pinning every past iteration in memory.
func (d *Dataset[T]) Unpersist() {
	if !d.cached {
		return
	}
	d.cached = false
	for p := range d.parts {
		var b float64
		for i := range d.parts[p] {
			b += float64(d.sizeOf(d.parts[p][i]))
		}
		if d.serialized {
			d.ctx.Cluster.AddCachedSerialized(p, -b)
		} else {
			d.ctx.Cluster.AddCached(p, -b)
		}
	}
	d.serialized = false
	if d.ctx.resilient {
		delete(d.ctx.registry, recoverable(d))
		d.retired = true
		d.parts = nil
		d.lineage = nil
		d.lost = nil
		d.lostCount = 0
	}
}

// Cached reports whether the dataset is persisted.
func (d *Dataset[T]) Cached() bool { return d.cached }

// FixedSize returns a sizeOf function reporting n bytes per record.
func FixedSize[T any](n int) func(T) int { return func(T) int { return n } }

// FromSlice distributes data round-robin over the context's partitions.
// The placement is arbitrary-but-deterministic, like loading an unsorted
// file from distributed storage.
func FromSlice[T any](ctx *Context, name string, data []T, sizeOf func(T) int) *Dataset[T] {
	d := newDataset[T](ctx, name, sizeOf)
	d.compute = func() [][]T {
		parts := make([][]T, ctx.Parts)
		per := (len(data) + ctx.Parts - 1) / ctx.Parts
		for p := range parts {
			parts[p] = make([]T, 0, per)
		}
		for i, rec := range data {
			p := i % ctx.Parts
			parts[p] = append(parts[p], rec)
		}
		// Charge a narrow load stage: every record is read once.
		tasks := make([]cluster.Task, ctx.Parts)
		for p := range tasks {
			tasks[p] = cluster.Task{Node: ctx.Cluster.NodeOf(p), Records: float64(len(parts[p]))}
		}
		ctx.runOutputStage(false, tasks)
		return parts
	}
	return d
}

// GenerateKeyed builds a dataset whose partition p holds exactly the
// records perPart(p) returns, and declares it hash-partitioned by key. The
// generator must emit only keys k with HashKey(k)%Parts == p; this is
// checked. CSTF uses it to create initial factor matrices in place on every
// node from a stateless seeded generator, with no load or broadcast step.
func GenerateKeyed[K comparable, V any](ctx *Context, name string, perPart func(p int) []KV[K, V], sizeOf func(KV[K, V]) int) *Dataset[KV[K, V]] {
	d := newDataset[KV[K, V]](ctx, name, sizeOf)
	d.keyed = true
	d.compute = func() [][]KV[K, V] {
		parts := make([][]KV[K, V], ctx.Parts)
		ctx.Cluster.Parallel(ctx.Parts, func(p int) {
			recs := perPart(p)
			for i := range recs {
				if int(HashKey(recs[i].Key)%uint64(ctx.Parts)) != p {
					panic("rdd: GenerateKeyed produced a key outside its partition")
				}
			}
			parts[p] = recs
		})
		tasks := make([]cluster.Task, ctx.Parts)
		for p := range tasks {
			tasks[p] = cluster.Task{Node: ctx.Cluster.NodeOf(p), Records: float64(len(parts[p]))}
		}
		ctx.runOutputStage(false, tasks)
		return parts
	}
	return d
}
