package rdd

// Broadcast is a read-only value shipped from the driver to every node
// once (torrent-style), then referenced by task closures for free — how
// CP-ALS distributes the rank-sized pseudo-inverse and normalization
// vectors without joining them.
type Broadcast[T any] struct {
	value T
}

// NewBroadcast distributes v (of the given serialized size in bytes) to
// all nodes, charging the broadcast network cost to the current phase.
func NewBroadcast[T any](ctx *Context, v T, bytes int) *Broadcast[T] {
	ctx.Cluster.ChargeBroadcast(float64(bytes))
	return &Broadcast[T]{value: v}
}

// Value returns the broadcast value.
func (b *Broadcast[T]) Value() T { return b.value }
