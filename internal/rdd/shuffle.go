package rdd

import "cstf/internal/cluster"

// shuffle redistributes keyed records so that every record lands in
// partition HashKey(key) % Parts, and returns per-destination cost tasks.
// Bytes are classified remote/local by comparing the source and destination
// hosts, mirroring Spark's shuffle-read metrics; every shuffled record also
// pays the profile's per-record serialization overhead.
func shuffle[K comparable, V any](ctx *Context, in [][]KV[K, V], sizeOf func(KV[K, V]) int) ([][]KV[K, V], []cluster.Task) {
	return shuffleBy(ctx, in, sizeOf, func(k K) int {
		return int(HashKey(k) % uint64(ctx.Parts))
	})
}

// shuffleBy is shuffle with an arbitrary destination function (hash for
// the pair operations, range for SortByKey).
func shuffleBy[K comparable, V any](ctx *Context, in [][]KV[K, V], sizeOf func(KV[K, V]) int, partOf func(K) int) ([][]KV[K, V], []cluster.Task) {
	P := ctx.Parts
	buckets := make([][][]KV[K, V], P) // [src][dst]
	bytes := make([][]float64, P)      // [src][dst]
	overhead := float64(ctx.Cluster.Profile.RecordOverhead)

	ctx.Cluster.Parallel(P, func(src int) {
		bk := make([][]KV[K, V], P)
		by := make([]float64, P)
		for i := range in[src] {
			rec := in[src][i]
			dst := partOf(rec.Key)
			bk[dst] = append(bk[dst], rec)
			by[dst] += float64(sizeOf(rec)) + overhead
		}
		buckets[src] = bk
		bytes[src] = by
	})

	out := make([][]KV[K, V], P)
	tasks := make([]cluster.Task, P)
	ctx.Cluster.Parallel(P, func(dst int) {
		node := ctx.Cluster.NodeOf(dst)
		var recs []KV[K, V]
		var remote, local, count float64
		for src := 0; src < P; src++ {
			recs = append(recs, buckets[src][dst]...)
			count += float64(len(buckets[src][dst]))
			if ctx.Cluster.NodeOf(src) == node {
				local += bytes[src][dst]
			} else {
				remote += bytes[src][dst]
			}
		}
		out[dst] = recs
		tasks[dst] = cluster.Task{Node: node, Records: count, RemoteBytes: remote, LocalBytes: local}
	})
	return out, tasks
}

// PartitionBy hash-partitions a keyed dataset (one shuffle). A dataset that
// is already key-partitioned is returned unchanged, as Spark does when the
// target partitioner equals the current one.
func PartitionBy[K comparable, V any](d *Dataset[KV[K, V]], os ...Option) *Dataset[KV[K, V]] {
	if d.keyed {
		return d
	}
	o := applyOpts("partitionBy", os)
	out := newDataset[KV[K, V]](d.ctx, o.name, d.sizeOf)
	out.keyed = true
	out.compute = func() [][]KV[K, V] {
		in := d.materialize()
		rc := o.costFactor * d.readCost()
		parts, tasks := shuffle(d.ctx, in, d.sizeOf)
		for i := range tasks {
			tasks[i].Flops = o.flopsPerRecord * tasks[i].Records
			tasks[i].Records *= rc
		}
		d.ctx.runOutputStage(true, tasks)
		return parts
	}
	return out
}

// ReduceByKey merges all values sharing a key with the associative,
// commutative combine function. Like Spark, it combines map-side first,
// shuffles the combined records, then reduces on the destination. A dataset
// already partitioned by key reduces without any shuffle (narrow stage).
// The output is hash-partitioned by key.
func ReduceByKey[K comparable, V any](d *Dataset[KV[K, V]], combine func(V, V) V, os ...Option) *Dataset[KV[K, V]] {
	o := applyOpts("reduceByKey", os)
	out := newDataset[KV[K, V]](d.ctx, o.name, d.sizeOf)
	out.keyed = true
	out.compute = func() [][]KV[K, V] {
		in := d.materialize()
		ctx := d.ctx
		P := ctx.Parts

		// foldParts combines records key-wise within each partition,
		// returning the combined partitions and the number of combine
		// invocations per partition (which is what flops are charged on:
		// reducing n records of one key costs n-1 combines).
		foldParts := func(parts [][]KV[K, V]) ([][]KV[K, V], []float64) {
			outParts := make([][]KV[K, V], P)
			merges := make([]float64, P)
			ctx.Cluster.Parallel(P, func(p int) {
				m := make(map[K]V, len(parts[p]))
				order := make([]K, 0, len(parts[p]))
				var nm float64
				for i := range parts[p] {
					rec := parts[p][i]
					if cur, ok := m[rec.Key]; ok {
						m[rec.Key] = combine(cur, rec.Val)
						nm++
					} else {
						m[rec.Key] = rec.Val
						order = append(order, rec.Key)
					}
				}
				recs := make([]KV[K, V], 0, len(m))
				for _, k := range order {
					recs = append(recs, KV[K, V]{Key: k, Val: m[k]})
				}
				outParts[p] = recs
				merges[p] = nm
			})
			return outParts, merges
		}

		rc := o.costFactor * d.readCost()
		if d.keyed {
			// Already partitioned by key: a single narrow reduce, no
			// map-side pre-combine needed, no shuffle.
			combined, merges := foldParts(in)
			tasks := make([]cluster.Task, P)
			for p := range tasks {
				tasks[p] = cluster.Task{
					Node:    ctx.Cluster.NodeOf(p),
					Records: rc * float64(len(in[p])),
					Flops:   o.flopsPerRecord * merges[p],
				}
			}
			ctx.runOutputStage(false, tasks)
			return combined
		}

		// Map-side combine within each source partition (narrow).
		combined, mapMerges := foldParts(in)
		mapTasks := make([]cluster.Task, P)
		for p := range mapTasks {
			mapTasks[p] = cluster.Task{
				Node:    ctx.Cluster.NodeOf(p),
				Records: rc * float64(len(in[p])),
				Flops:   o.flopsPerRecord * mapMerges[p],
			}
		}
		ctx.Cluster.RunStage(false, mapTasks)

		// Shuffle the combined records and reduce on the destination (wide).
		shuffled, tasks := shuffle(ctx, combined, d.sizeOf)
		final, redMerges := foldParts(shuffled)
		for p := range tasks {
			tasks[p].Flops = o.flopsPerRecord * redMerges[p]
			tasks[p].Records *= o.costFactor
		}
		ctx.runOutputStage(true, tasks)
		return final
	}
	return out
}

// Join inner-joins two keyed datasets. Sides that are not already
// hash-partitioned by key are shuffled; a join of two co-partitioned
// datasets is a narrow (shuffle-free) stage, the placement CSTF engineers
// for factor-matrix joins. The output pairs every left value with every
// matching right value and is hash-partitioned by key.
func Join[K comparable, V, W any](a *Dataset[KV[K, V]], b *Dataset[KV[K, W]], sizeOf func(KV[K, Pair[V, W]]) int, os ...Option) *Dataset[KV[K, Pair[V, W]]] {
	if a.ctx != b.ctx {
		panic("rdd: join across contexts")
	}
	o := applyOpts("join", os)
	out := newDataset[KV[K, Pair[V, W]]](a.ctx, o.name, sizeOf)
	out.keyed = true
	out.compute = func() [][]KV[K, Pair[V, W]] {
		ctx := a.ctx
		P := ctx.Parts
		inA := a.materialize()
		inB := b.materialize()

		tasks := make([]cluster.Task, P)
		for p := range tasks {
			tasks[p].Node = ctx.Cluster.NodeOf(p)
		}
		wide := false
		if !a.keyed {
			wide = true
			var ta []cluster.Task
			inA, ta = shuffle(ctx, inA, a.sizeOf)
			for p := range tasks {
				tasks[p].Records += ta[p].Records
				tasks[p].RemoteBytes += ta[p].RemoteBytes
				tasks[p].LocalBytes += ta[p].LocalBytes
			}
		} else {
			for p := range tasks {
				tasks[p].Records += float64(len(inA[p]))
			}
		}
		if !b.keyed {
			wide = true
			var tb []cluster.Task
			inB, tb = shuffle(ctx, inB, b.sizeOf)
			for p := range tasks {
				tasks[p].Records += tb[p].Records
				tasks[p].RemoteBytes += tb[p].RemoteBytes
				tasks[p].LocalBytes += tb[p].LocalBytes
			}
		} else {
			for p := range tasks {
				tasks[p].Records += float64(len(inB[p]))
			}
		}

		parts := make([][]KV[K, Pair[V, W]], P)
		ctx.Cluster.Parallel(P, func(p int) {
			right := make(map[K][]W, len(inB[p]))
			for i := range inB[p] {
				rec := inB[p][i]
				right[rec.Key] = append(right[rec.Key], rec.Val)
			}
			var dst []KV[K, Pair[V, W]]
			for i := range inA[p] {
				rec := inA[p][i]
				for _, w := range right[rec.Key] {
					dst = append(dst, KV[K, Pair[V, W]]{Key: rec.Key, Val: Pair[V, W]{A: rec.Val, B: w}})
				}
			}
			parts[p] = dst
		})
		for p := range tasks {
			tasks[p].Flops = o.flopsPerRecord * tasks[p].Records
			tasks[p].Records *= o.costFactor
		}
		ctx.runOutputStage(wide, tasks)
		return parts
	}
	return out
}
