package rdd

import "cstf/internal/cluster"

// Option tunes the cost accounting of a transformation.
type Option func(*opts)

type opts struct {
	flopsPerRecord float64
	costFactor     float64
	name           string
}

// WithFlops declares the floating-point work the transformation's function
// performs per input record, so the cost model can charge it to the right
// nodes. Engine overhead (RecordCost) is always charged separately.
func WithFlops(perRecord float64) Option {
	return func(o *opts) { o.flopsPerRecord = perRecord }
}

// WithCostFactor scales the per-record engine cost charged by this
// operation. Records whose values are structurally heavier than a flat
// tuple — e.g. CSTF-QCOO's per-nonzero queue of row vectors, which costs
// extra allocation, pointer chasing, and (de)serialization on a JVM — carry
// a factor > 1. This is the knob behind the paper's observation that the
// queue strategy is slightly slower than plain COO on small clusters.
func WithCostFactor(f float64) Option {
	return func(o *opts) { o.costFactor = f }
}

// WithName overrides the debug name of the resulting dataset.
func WithName(name string) Option {
	return func(o *opts) { o.name = name }
}

func applyOpts(def string, os []Option) opts {
	o := opts{name: def, costFactor: 1}
	for _, f := range os {
		f(&o)
	}
	return o
}

// narrowTasks charges a narrow (pipelined, no-shuffle) stage over the given
// per-partition record counts. Tasks are indexed by output partition, so
// during lineage recovery only the rebuilt partitions are charged.
func narrowTasks(ctx *Context, counts []int, o opts) {
	tasks := make([]cluster.Task, len(counts))
	for p, n := range counts {
		tasks[p] = cluster.Task{
			Node:    ctx.Cluster.NodeOf(p),
			Records: o.costFactor * float64(n),
			Flops:   o.flopsPerRecord * float64(n),
		}
	}
	ctx.runOutputStage(false, tasks)
}

// Map applies f to every record. The result is not key-partitioned even if
// the input was (Spark cannot prove f preserves keys).
func Map[T, U any](d *Dataset[T], f func(T) U, sizeOf func(U) int, os ...Option) *Dataset[U] {
	o := applyOpts("map", os)
	out := newDataset[U](d.ctx, o.name, sizeOf)
	out.compute = func() [][]U {
		in := d.materialize()
		parts := make([][]U, d.ctx.Parts)
		counts := make([]int, d.ctx.Parts)
		d.ctx.Cluster.Parallel(d.ctx.Parts, func(p int) {
			src := in[p]
			dst := make([]U, len(src))
			for i := range src {
				dst[i] = f(src[i])
			}
			parts[p] = dst
			counts[p] = len(src)
		})
		oc := o
		oc.costFactor *= d.readCost()
		narrowTasks(d.ctx, counts, oc)
		return parts
	}
	return out
}

// FlatMap applies f to every record and concatenates the results.
func FlatMap[T, U any](d *Dataset[T], f func(T) []U, sizeOf func(U) int, os ...Option) *Dataset[U] {
	o := applyOpts("flatMap", os)
	out := newDataset[U](d.ctx, o.name, sizeOf)
	out.compute = func() [][]U {
		in := d.materialize()
		parts := make([][]U, d.ctx.Parts)
		counts := make([]int, d.ctx.Parts)
		d.ctx.Cluster.Parallel(d.ctx.Parts, func(p int) {
			src := in[p]
			var dst []U
			for i := range src {
				dst = append(dst, f(src[i])...)
			}
			parts[p] = dst
			counts[p] = len(src)
		})
		oc := o
		oc.costFactor *= d.readCost()
		narrowTasks(d.ctx, counts, oc)
		return parts
	}
	return out
}

// Filter keeps records satisfying pred. Filtering preserves key
// partitioning (keys are unchanged), as in Spark.
func Filter[T any](d *Dataset[T], pred func(T) bool, os ...Option) *Dataset[T] {
	o := applyOpts("filter", os)
	out := newDataset[T](d.ctx, o.name, d.sizeOf)
	out.keyed = d.keyed
	out.compute = func() [][]T {
		in := d.materialize()
		parts := make([][]T, d.ctx.Parts)
		counts := make([]int, d.ctx.Parts)
		d.ctx.Cluster.Parallel(d.ctx.Parts, func(p int) {
			src := in[p]
			dst := make([]T, 0, len(src))
			for i := range src {
				if pred(src[i]) {
					dst = append(dst, src[i])
				}
			}
			parts[p] = dst
			counts[p] = len(src)
		})
		oc := o
		oc.costFactor *= d.readCost()
		narrowTasks(d.ctx, counts, oc)
		return parts
	}
	return out
}

// MapValues transforms the value of each KV record, preserving the key and
// therefore the partitioning — the property QCOO's queue-reduction step
// (STAGE 3 of Table 2) depends on to avoid a shuffle.
func MapValues[K comparable, V, W any](d *Dataset[KV[K, V]], f func(V) W, sizeOf func(KV[K, W]) int, os ...Option) *Dataset[KV[K, W]] {
	o := applyOpts("mapValues", os)
	out := newDataset[KV[K, W]](d.ctx, o.name, sizeOf)
	out.keyed = d.keyed
	out.compute = func() [][]KV[K, W] {
		in := d.materialize()
		parts := make([][]KV[K, W], d.ctx.Parts)
		counts := make([]int, d.ctx.Parts)
		d.ctx.Cluster.Parallel(d.ctx.Parts, func(p int) {
			src := in[p]
			dst := make([]KV[K, W], len(src))
			for i := range src {
				dst[i] = KV[K, W]{Key: src[i].Key, Val: f(src[i].Val)}
			}
			parts[p] = dst
			counts[p] = len(src)
		})
		oc := o
		oc.costFactor *= d.readCost()
		narrowTasks(d.ctx, counts, oc)
		return parts
	}
	return out
}

// MapPartitions applies f to whole partitions. Output is not key-partitioned.
func MapPartitions[T, U any](d *Dataset[T], f func(p int, in []T) []U, sizeOf func(U) int, os ...Option) *Dataset[U] {
	o := applyOpts("mapPartitions", os)
	out := newDataset[U](d.ctx, o.name, sizeOf)
	out.compute = func() [][]U {
		in := d.materialize()
		parts := make([][]U, d.ctx.Parts)
		counts := make([]int, d.ctx.Parts)
		d.ctx.Cluster.Parallel(d.ctx.Parts, func(p int) {
			parts[p] = f(p, in[p])
			counts[p] = len(in[p])
		})
		oc := o
		oc.costFactor *= d.readCost()
		narrowTasks(d.ctx, counts, oc)
		return parts
	}
	return out
}
