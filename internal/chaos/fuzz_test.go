package chaos

import "testing"

// FuzzFaultPlan checks the FaultInjector contract over arbitrary seeds and
// specs: generated plans validate, every permanent event is delivered
// exactly once regardless of the query schedule (and regardless of whether
// it is popped through TakeFaults or TakeEvents), and StageConditions is a
// pure in-bounds function of (seq, nodes).
func FuzzFaultPlan(f *testing.F) {
	f.Add(uint64(1), 4, uint64(20), 1, 1, 1, 1, 1, 1, 1)
	f.Add(uint64(42), 8, uint64(100), 3, 2, 2, 3, 2, 2, 2)
	f.Add(uint64(0), 1, uint64(0), 0, 0, 0, 0, 0, 0, 0)
	f.Add(uint64(7), 3, uint64(12), 0, 0, 0, 0, 2, 1, 1)
	f.Fuzz(func(t *testing.T, seed uint64, nodes int, horizon uint64, crashes, stragglers, netDrops, disks, partitions, corrupts, torn int) {
		if nodes < 0 || nodes > 64 || horizon > 1<<16 {
			t.Skip()
		}
		clamp := func(n int) int {
			if n < 0 {
				return 0
			}
			if n > 8 {
				return 8
			}
			return n
		}
		spec := Spec{
			Nodes: nodes, Horizon: horizon,
			Crashes: clamp(crashes), Stragglers: clamp(stragglers),
			NetDrops: clamp(netDrops), DiskFailures: clamp(disks),
			NetPartitions: clamp(partitions), FrameCorrupts: clamp(corrupts),
			TornWrites: clamp(torn),
		}
		p := NewPlan(seed, spec)
		effNodes := spec.withDefaults().Nodes
		if err := p.Validate(effNodes); err != nil {
			t.Fatalf("generated plan invalid: %v", err)
		}
		want := spec.Crashes + spec.DiskFailures + spec.NetPartitions +
			spec.FrameCorrupts + spec.TornWrites

		// Deliver through an adversarial query schedule interleaving both
		// delivery APIs: odd steps first, then a catch-all. Total deliveries
		// must equal the permanent events; no event may be delivered by both.
		got := 0
		for seq := uint64(1); seq <= spec.withDefaults().Horizon+2; seq += 2 {
			cr, dk := p.TakeFaults(seq)
			got += len(cr) + len(dk)
			got += len(p.TakeEvents(seq, NetPartition, FrameCorrupt, TornWrite))
		}
		cr, dk := p.TakeFaults(1 << 62)
		got += len(cr) + len(dk)
		got += len(p.TakeEvents(1<<62, NetPartition, FrameCorrupt, TornWrite))
		// Double delivery through the other API must find nothing: the two
		// delivery paths share one delivered-set.
		got += len(p.TakeEvents(1<<62, NodeCrash, DiskFailure))
		if got != want {
			t.Fatalf("delivered %d permanent events, scheduled %d", got, want)
		}
		if cr, dk = p.TakeFaults(1 << 62); len(cr)+len(dk) != 0 {
			t.Fatalf("redelivery after drain: %v %v", cr, dk)
		}
		if ev := p.TakeEvents(1<<62, NodeCrash, DiskFailure, NetPartition, FrameCorrupt, TornWrite); len(ev) != 0 {
			t.Fatalf("redelivery after drain: %v", ev)
		}
		// Transient kinds are never "delivered".
		if ev := p.TakeEvents(1<<62, Straggler, NetDegrade); len(ev) != 0 {
			t.Fatalf("transient kinds delivered as events: %v", ev)
		}

		for seq := uint64(1); seq < 40; seq++ {
			s1, n1 := p.StageConditions(seq, effNodes)
			s2, n2 := p.StageConditions(seq, effNodes)
			if n1 != n2 || len(s1) != len(s2) {
				t.Fatalf("StageConditions impure at seq %d", seq)
			}
			if n1 <= 0 || n1 > 1 {
				t.Fatalf("net factor %g out of (0,1] at seq %d", n1, seq)
			}
			for i := range s1 {
				if s1[i] != s2[i] {
					t.Fatalf("StageConditions impure at seq %d node %d", seq, i)
				}
				if s1[i] < 1 {
					t.Fatalf("slowdown %g < 1 at seq %d node %d", s1[i], seq, i)
				}
			}
		}
	})
}
