package chaos

import (
	"reflect"
	"testing"
)

func TestNewPlanDeterministic(t *testing.T) {
	spec := Spec{Nodes: 8, Horizon: 40, Crashes: 2, Stragglers: 3, NetDrops: 1, DiskFailures: 2}
	a := NewPlan(7, spec)
	b := NewPlan(7, spec)
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatalf("same seed/spec produced different plans:\n%v\n%v", a.Events, b.Events)
	}
	c := NewPlan(8, spec)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatalf("different seeds produced identical plans")
	}
	if err := a.Validate(spec.Nodes); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].Stage < a.Events[i-1].Stage {
			t.Fatalf("events not sorted by stage: %v", a.Events)
		}
	}
}

func TestTakeFaultsDeliversOnce(t *testing.T) {
	p := NewPlanFromEvents(
		Event{Kind: NodeCrash, Stage: 3, Node: 1},
		Event{Kind: DiskFailure, Stage: 5, Node: 2},
		Event{Kind: NodeCrash, Stage: 9, Node: 0},
	)
	if cr, dk := p.TakeFaults(2); len(cr) != 0 || len(dk) != 0 {
		t.Fatalf("stage 2 should deliver nothing, got crashes=%v disks=%v", cr, dk)
	}
	// Stage 6 is past both stage-3 and stage-5 events: late delivery still
	// happens, once.
	cr, dk := p.TakeFaults(6)
	if len(cr) != 1 || cr[0] != 1 || len(dk) != 1 || dk[0] != 2 {
		t.Fatalf("stage 6 delivery wrong: crashes=%v disks=%v", cr, dk)
	}
	if cr, dk = p.TakeFaults(6); len(cr) != 0 || len(dk) != 0 {
		t.Fatalf("redelivery: crashes=%v disks=%v", cr, dk)
	}
	if cr, _ = p.TakeFaults(100); len(cr) != 1 || cr[0] != 0 {
		t.Fatalf("stage 100 should deliver the stage-9 crash, got %v", cr)
	}
}

func TestStageConditionsWindowsAndPurity(t *testing.T) {
	p := NewPlanFromEvents(
		Event{Kind: Straggler, Stage: 4, Node: 1, Factor: 3, Duration: 2},
		Event{Kind: Straggler, Stage: 5, Node: 1, Factor: 2, Duration: 2},
		Event{Kind: NetDegrade, Stage: 4, Factor: 0.5, Duration: 1},
	)
	if slow, net := p.StageConditions(3, 4); slow != nil || net != 1 {
		t.Fatalf("stage 3 should be clean, got slow=%v net=%g", slow, net)
	}
	slow, net := p.StageConditions(4, 4)
	if slow == nil || slow[1] != 3 || net != 0.5 {
		t.Fatalf("stage 4: slow=%v net=%g", slow, net)
	}
	// Overlap at stage 5 composes multiplicatively; the net window ended.
	slow, net = p.StageConditions(5, 4)
	if slow == nil || slow[1] != 6 || net != 1 {
		t.Fatalf("stage 5: slow=%v net=%g", slow, net)
	}
	// Purity: repeated queries (and queries after TakeFaults) are identical.
	p.TakeFaults(10)
	slow2, net2 := p.StageConditions(5, 4)
	if !reflect.DeepEqual(slow, slow2) || net != net2 {
		t.Fatalf("StageConditions not pure: %v/%g vs %v/%g", slow, net, slow2, net2)
	}
}

func TestValidateRejectsBadEvents(t *testing.T) {
	cases := []Event{
		{Kind: NodeCrash, Stage: 1, Node: 9},
		{Kind: Straggler, Stage: 1, Node: 0, Factor: 0.5, Duration: 1},
		{Kind: NetDegrade, Stage: 1, Factor: 1.5, Duration: 1},
		{Kind: Kind(42), Stage: 1},
	}
	for _, e := range cases {
		if err := NewPlanFromEvents(e).Validate(4); err == nil {
			t.Errorf("Validate accepted bad event %+v", e)
		}
	}
	ok := NewPlanFromEvents(
		Event{Kind: NodeCrash, Stage: 1, Node: 3},
		Event{Kind: Straggler, Stage: 2, Node: 0, Factor: 2, Duration: 5},
		Event{Kind: NetDegrade, Stage: 3, Factor: 0.25, Duration: 5},
	)
	if err := ok.Validate(4); err != nil {
		t.Errorf("Validate rejected good plan: %v", err)
	}
}

func TestCloneResetsDelivery(t *testing.T) {
	p := NewPlanFromEvents(Event{Kind: NodeCrash, Stage: 2, Node: 0})
	if cr, _ := p.TakeFaults(5); len(cr) != 1 {
		t.Fatalf("expected delivery, got %v", cr)
	}
	q := p.Clone()
	if cr, _ := q.TakeFaults(5); len(cr) != 1 {
		t.Fatalf("clone should redeliver, got %v", cr)
	}
	if cr, _ := p.TakeFaults(5); len(cr) != 0 {
		t.Fatalf("original should stay delivered, got %v", cr)
	}
}
