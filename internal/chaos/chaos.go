// Package chaos builds deterministic fault schedules for the simulated
// cluster and the real dist runtime. A FaultPlan is a seeded list of
// events — node crashes, per-node stragglers, transient network
// degradation, HDFS disk failures, plus the dist-runtime kinds: connection
// partitions, frame corruptions, and torn checkpoint writes — pinned to
// the cluster's stage clock rather than wall time, so the same plan
// replays bitwise-identically across runs and across host-parallelism
// settings. The plan implements cluster.FaultInjector: permanent faults
// (crashes, disk failures, partitions, corruptions, torn writes) are
// delivered exactly once at the first stage boundary at or past their
// scheduled stage, while transient conditions (stragglers, slow networks)
// apply to every stage inside their window.
package chaos

import (
	"fmt"
	"sort"
	"sync"

	"cstf/internal/cluster"
	"cstf/internal/rng"
)

// Kind enumerates the fault types a plan can schedule.
type Kind int

const (
	// NodeCrash kills a node's executor at a stage boundary: its cached
	// partitions are lost and must be recomputed from lineage (rdd) and its
	// HDFS block replicas re-replicated (mapreduce). Delivered once.
	NodeCrash Kind = iota
	// Straggler slows one node's execution by Factor for Duration stages.
	Straggler
	// NetDegrade multiplies every node's shuffle-fetch bandwidth by Factor
	// (in (0,1)) for Duration stages.
	NetDegrade
	// DiskFailure destroys the HDFS block replicas stored on one node; the
	// executor itself survives. Delivered once.
	DiskFailure
	// NetPartition severs one worker's connection at a stage boundary
	// WITHOUT killing the process (dist runtime): the worker survives and
	// may be re-admitted by the coordinator's rejoin loop. Delivered once.
	NetPartition
	// FrameCorrupt flips one byte of the next frame sent to one worker
	// (dist runtime): the receiver's CRC32-C must catch it and reset the
	// connection rather than absorb a wrong result. Delivered once.
	FrameCorrupt
	// TornWrite truncates the coordinator checkpoint written at or after
	// the scheduled stage, simulating a crash mid-write; a later resume
	// must detect the damage (typed corrupt error), never load garbage.
	// Delivered once.
	TornWrite
)

func (k Kind) String() string {
	switch k {
	case NodeCrash:
		return "node-crash"
	case Straggler:
		return "straggler"
	case NetDegrade:
		return "net-degrade"
	case DiskFailure:
		return "disk-failure"
	case NetPartition:
		return "net-partition"
	case FrameCorrupt:
		return "frame-corrupt"
	case TornWrite:
		return "torn-write"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// permanent reports whether the kind is delivered exactly once at a stage
// boundary (vs a transient window condition).
func (k Kind) permanent() bool {
	switch k {
	case NodeCrash, DiskFailure, NetPartition, FrameCorrupt, TornWrite:
		return true
	}
	return false
}

// Event is one scheduled fault. Stage is the 1-based stage-sequence number
// it targets (permanent faults fire at the boundary before that stage;
// transient ones cover stages [Stage, Stage+Duration)).
type Event struct {
	Kind     Kind
	Stage    uint64
	Node     int     // target node (NodeCrash, Straggler, DiskFailure)
	Factor   float64 // slowdown multiplier (>1) or bandwidth multiplier (<1)
	Duration uint64  // window length in stages (transient kinds only)
}

func (e Event) String() string {
	switch e.Kind {
	case NodeCrash, DiskFailure:
		return fmt.Sprintf("%v node=%d @stage %d", e.Kind, e.Node, e.Stage)
	case Straggler:
		return fmt.Sprintf("%v node=%d x%.2g @stages [%d,%d)", e.Kind, e.Node, e.Factor, e.Stage, e.Stage+e.Duration)
	default:
		return fmt.Sprintf("%v x%.2g @stages [%d,%d)", e.Kind, e.Factor, e.Stage, e.Stage+e.Duration)
	}
}

// FaultPlan is an immutable fault schedule plus delivery state. The zero
// value is an empty plan (no faults). A plan must not be shared between
// clusters: delivery state is per-run. Use Clone for a fresh replay.
type FaultPlan struct {
	Seed   uint64
	Events []Event

	mu        sync.Mutex
	delivered []bool // per event, for permanent kinds
}

var _ cluster.FaultInjector = (*FaultPlan)(nil)

// Spec parameterizes NewPlan's random schedule.
type Spec struct {
	Nodes   int    // cluster size events target
	Horizon uint64 // stages the schedule spreads over (e.g. a run's stage count)

	Crashes         int     // node crashes to schedule
	Stragglers      int     // straggler windows to schedule
	StragglerFactor float64 // slowdown multiplier (default 4)
	StragglerStages uint64  // straggler window length (default Horizon/4)
	NetDrops        int     // network degradation windows
	NetFactor       float64 // bandwidth multiplier in (0,1) (default 0.5)
	NetStages       uint64  // degradation window length (default Horizon/4)
	DiskFailures    int     // HDFS disk failures to schedule

	NetPartitions int // connection severs without process kill (dist)
	FrameCorrupts int // single-byte frame corruptions (dist)
	TornWrites    int // torn checkpoint writes (dist coordinator)
}

func (s *Spec) withDefaults() Spec {
	out := *s
	if out.Nodes <= 0 {
		out.Nodes = 1
	}
	if out.Horizon == 0 {
		out.Horizon = 100
	}
	if out.StragglerFactor <= 1 {
		out.StragglerFactor = 4
	}
	if out.StragglerStages == 0 {
		out.StragglerStages = out.Horizon/4 + 1
	}
	if out.NetFactor <= 0 || out.NetFactor >= 1 {
		out.NetFactor = 0.5
	}
	if out.NetStages == 0 {
		out.NetStages = out.Horizon/4 + 1
	}
	return out
}

// NewPlan builds a deterministic schedule from (seed, spec): event stages
// and target nodes are drawn with the repo's stateless counter rng, then
// sorted by stage. Identical (seed, spec) always produce an identical plan.
func NewPlan(seed uint64, spec Spec) *FaultPlan {
	s := spec.withDefaults()
	p := &FaultPlan{Seed: seed}
	draw := func(kind, i uint64, span uint64) uint64 {
		if span == 0 {
			return 0
		}
		return uint64(rng.UniformAt(seed, 0xC4A05, kind, i) * float64(span))
	}
	node := func(kind, i uint64) int {
		return int(rng.UniformAt(seed, 0xC4A06, kind, i) * float64(s.Nodes))
	}
	for i := 0; i < s.Crashes; i++ {
		p.Events = append(p.Events, Event{
			Kind:  NodeCrash,
			Stage: 1 + draw(uint64(NodeCrash), uint64(i), s.Horizon),
			Node:  node(uint64(NodeCrash), uint64(i)),
		})
	}
	for i := 0; i < s.Stragglers; i++ {
		p.Events = append(p.Events, Event{
			Kind:     Straggler,
			Stage:    1 + draw(uint64(Straggler), uint64(i), s.Horizon),
			Node:     node(uint64(Straggler), uint64(i)),
			Factor:   s.StragglerFactor,
			Duration: s.StragglerStages,
		})
	}
	for i := 0; i < s.NetDrops; i++ {
		p.Events = append(p.Events, Event{
			Kind:     NetDegrade,
			Stage:    1 + draw(uint64(NetDegrade), uint64(i), s.Horizon),
			Factor:   s.NetFactor,
			Duration: s.NetStages,
		})
	}
	for i := 0; i < s.DiskFailures; i++ {
		p.Events = append(p.Events, Event{
			Kind:  DiskFailure,
			Stage: 1 + draw(uint64(DiskFailure), uint64(i), s.Horizon),
			Node:  node(uint64(DiskFailure), uint64(i)),
		})
	}
	for i := 0; i < s.NetPartitions; i++ {
		p.Events = append(p.Events, Event{
			Kind:  NetPartition,
			Stage: 1 + draw(uint64(NetPartition), uint64(i), s.Horizon),
			Node:  node(uint64(NetPartition), uint64(i)),
		})
	}
	for i := 0; i < s.FrameCorrupts; i++ {
		p.Events = append(p.Events, Event{
			Kind:  FrameCorrupt,
			Stage: 1 + draw(uint64(FrameCorrupt), uint64(i), s.Horizon),
			Node:  node(uint64(FrameCorrupt), uint64(i)),
		})
	}
	for i := 0; i < s.TornWrites; i++ {
		p.Events = append(p.Events, Event{
			Kind:  TornWrite,
			Stage: 1 + draw(uint64(TornWrite), uint64(i), s.Horizon),
		})
	}
	sortEvents(p.Events)
	return p
}

// NewPlanFromEvents builds a plan from an explicit event list (tests and
// experiments use this to pin a crash to an exact stage).
func NewPlanFromEvents(events ...Event) *FaultPlan {
	p := &FaultPlan{Events: append([]Event(nil), events...)}
	sortEvents(p.Events)
	return p
}

func sortEvents(ev []Event) {
	sort.SliceStable(ev, func(i, j int) bool { return ev[i].Stage < ev[j].Stage })
}

// Clone returns a copy of the plan with fresh (undelivered) state, for
// replaying the same schedule on another cluster.
func (p *FaultPlan) Clone() *FaultPlan {
	return &FaultPlan{Seed: p.Seed, Events: append([]Event(nil), p.Events...)}
}

// Validate reports the first structurally invalid event, if any.
func (p *FaultPlan) Validate(nodes int) error {
	for i, e := range p.Events {
		switch e.Kind {
		case NodeCrash, DiskFailure:
			if e.Node < 0 || (nodes > 0 && e.Node >= nodes) {
				return fmt.Errorf("chaos: event %d (%v): node %d out of range [0,%d)", i, e.Kind, e.Node, nodes)
			}
		case Straggler:
			if e.Node < 0 || (nodes > 0 && e.Node >= nodes) {
				return fmt.Errorf("chaos: event %d (%v): node %d out of range [0,%d)", i, e.Kind, e.Node, nodes)
			}
			if e.Factor <= 1 {
				return fmt.Errorf("chaos: event %d (%v): slowdown factor %g must be > 1", i, e.Kind, e.Factor)
			}
		case NetDegrade:
			if e.Factor <= 0 || e.Factor >= 1 {
				return fmt.Errorf("chaos: event %d (%v): bandwidth factor %g must be in (0,1)", i, e.Kind, e.Factor)
			}
		case NetPartition, FrameCorrupt:
			if e.Node < 0 || (nodes > 0 && e.Node >= nodes) {
				return fmt.Errorf("chaos: event %d (%v): node %d out of range [0,%d)", i, e.Kind, e.Node, nodes)
			}
		case TornWrite:
			// No node target: the torn write hits the coordinator's own
			// checkpoint file.
		default:
			return fmt.Errorf("chaos: event %d: unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// TakeEvents pops every undelivered permanent event of the given kinds
// scheduled at or before stage seq, in schedule order. Delivery state is
// shared with TakeFaults — an event popped by one is never popped by the
// other. Transient kinds (Straggler, NetDegrade) are window conditions,
// not deliveries, and are ignored here; query them with StageConditions.
func (p *FaultPlan) TakeEvents(seq uint64, kinds ...Kind) []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.delivered == nil {
		p.delivered = make([]bool, len(p.Events))
	}
	var out []Event
	for i, e := range p.Events {
		if p.delivered[i] || e.Stage > seq || !e.Kind.permanent() {
			continue
		}
		for _, k := range kinds {
			if e.Kind == k {
				p.delivered[i] = true
				out = append(out, e)
				break
			}
		}
	}
	return out
}

// TakeFaults implements cluster.FaultInjector: it pops every undelivered
// NodeCrash and DiskFailure scheduled at or before stage seq. Each event is
// delivered exactly once for the lifetime of the plan.
func (p *FaultPlan) TakeFaults(seq uint64) (crashedNodes, failedDisks []int) {
	for _, e := range p.TakeEvents(seq, NodeCrash, DiskFailure) {
		if e.Kind == NodeCrash {
			crashedNodes = append(crashedNodes, e.Node)
		} else {
			failedDisks = append(failedDisks, e.Node)
		}
	}
	return crashedNodes, failedDisks
}

// StageConditions implements cluster.FaultInjector: a pure function of
// (seq, nodes) reporting the transient conditions stage seq runs under.
// Overlapping windows compose multiplicatively.
func (p *FaultPlan) StageConditions(seq uint64, nodes int) ([]float64, float64) {
	var slow []float64
	net := 1.0
	for _, e := range p.Events {
		if seq < e.Stage || seq >= e.Stage+e.Duration {
			continue
		}
		switch e.Kind {
		case Straggler:
			if e.Node < 0 || e.Node >= nodes || e.Factor <= 1 {
				continue
			}
			if slow == nil {
				slow = make([]float64, nodes)
				for i := range slow {
					slow[i] = 1
				}
			}
			slow[e.Node] *= e.Factor
		case NetDegrade:
			if e.Factor > 0 && e.Factor < 1 {
				net *= e.Factor
			}
		}
	}
	return slow, net
}
