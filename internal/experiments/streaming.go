package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cstf/internal/cpals"
	"cstf/internal/serve"
	"cstf/internal/stream"
	"cstf/internal/tensor"
)

// Streaming benchmark: the batch pipeline's answer to "how stale is the
// served model?" is "as stale as the last retrain". StreamBench measures
// the alternative end to end — train an initial model, serve it with the
// hot-reload watcher, then stream windows of new nonzeros through
// internal/stream and record, per window, the incremental update time and
// the freshness lag from event arrival to queryable version; at the end it
// compares the streamed model's fit against a one-shot batch retrain of the
// final tensor (fit drift) and the mean window update time against the cost
// of that full retrain.

// StreamBenchConfig sizes the streaming benchmark; tests shrink it.
type StreamBenchConfig struct {
	Dims           []int   // initial tensor shape
	InitNNZ        int     // nonzeros trained on before streaming starts
	TrainIters     int     // batch ALS iterations for the initial model
	Windows        int     // streamed delta windows
	WindowSize     int     // events per window
	FullSweepEvery int     // warm full sweep cadence (windows)
	GrowEvery      int     // source grows a mode every N events (0 = static dims)
	Noise          float64 // value noise of the planted stream
}

// DefaultStreamBenchConfig returns the `cstf-bench -exp stream` sizing.
func DefaultStreamBenchConfig() StreamBenchConfig {
	// Windows are small relative to the mode sizes — the regime incremental
	// updates are for: each window touches a few percent of the rows, so the
	// restricted sweep does a few percent of a full sweep's MTTKRP work.
	return StreamBenchConfig{
		Dims:           []int{5000, 4000, 3000},
		InitNNZ:        400000,
		TrainIters:     4,
		Windows:        10,
		WindowSize:     500,
		FullSweepEvery: 4,
		GrowEvery:      1000,
		Noise:          0.05,
	}
}

// StreamWindowRow is one streamed window's measurements.
type StreamWindowRow struct {
	Window      int     `json:"window"`
	Events      int     `json:"events"`
	TouchedRows int     `json:"touched_rows"`
	NNZ         int     `json:"nnz"`
	UpdateMs    float64 `json:"update_ms"`
	LagMs       float64 `json:"lag_ms"` // event arrival -> queryable version
	FullSweep   bool    `json:"full_sweep"`
	Version     int     `json:"version"`
}

// StreamReport is the machine-readable result of StreamBench
// (results/BENCH_stream.json).
type StreamReport struct {
	Dims           []int             `json:"dims"`       // initial dims
	FinalDims      []int             `json:"final_dims"` // after growth
	Rank           int               `json:"rank"`
	InitNNZ        int               `json:"init_nnz"`
	FinalNNZ       int               `json:"final_nnz"`
	InitFit        float64           `json:"init_fit"`
	Rows           []StreamWindowRow `json:"rows"`
	StreamFit      float64           `json:"stream_fit"`      // fit of the streamed model on the final tensor
	BatchFit       float64           `json:"batch_fit"`       // one-shot batch retrain, same seed/iters budget
	FitDrift       float64           `json:"fit_drift"`       // batch - stream (positive = stream behind)
	MeanWindowMs   float64           `json:"mean_window_ms"`  // mean incremental update time
	MaxLagMs       float64           `json:"max_lag_ms"`      // worst event->queryable freshness lag
	FullRetrainMs  float64           `json:"full_retrain_ms"` // one warm full ALS sweep over the final tensor
	Speedup        float64           `json:"window_vs_retrain_speedup"`
	Published      int               `json:"published"`
	ServerReloads  uint64            `json:"server_reloads"`
	ServedVersion  uint64            `json:"served_version"` // serve.Model.Version after the last reload
	ServedModelAge float64           `json:"served_model_age_secs"`
}

// StreamBench runs the streaming benchmark with the default sizing.
func StreamBench(p Params) (*StreamReport, error) {
	return StreamBenchWith(p, DefaultStreamBenchConfig())
}

// StreamBenchWith trains, serves, streams, and measures. Any pipeline or
// serving error fails the benchmark; so does a server that never reloads.
func StreamBenchWith(p Params, cfg StreamBenchConfig) (*StreamReport, error) {
	rank := p.Rank
	if rank < 2 {
		rank = 2
	}
	total := cfg.InitNNZ + cfg.Windows*cfg.WindowSize
	src, err := stream.NewSynthetic(stream.SyntheticConfig{
		Seed: p.Seed, Dims: cfg.Dims, Rank: rank,
		Noise: cfg.Noise, Total: total, GrowEvery: cfg.GrowEvery,
	})
	if err != nil {
		return nil, err
	}

	// Initial batch: the first InitNNZ events of the same stream.
	first, err := src.Next(cfg.InitNNZ)
	if err != nil {
		return nil, err
	}
	x := tensor.New(src.Dims()...)
	x.Entries = append([]tensor.Entry(nil), first...)
	x.DedupSum()
	res, err := cpals.Solve(x, cpals.Options{Rank: rank, MaxIters: cfg.TrainIters, Seed: p.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: stream bench initial training failed: %w", err)
	}

	dir, err := os.MkdirTemp("", "cstf-stream-bench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.ckpt")

	u, err := stream.NewUpdaterFromResult(x, res, p.Seed, 0)
	if err != nil {
		return nil, err
	}
	pub := stream.NewPublisher(path, p.Seed)
	if _, err := pub.Publish(u, res.Fit()); err != nil {
		return nil, err
	}

	m, err := serve.LoadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	s, err := serve.New(m, serve.Config{})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Watch(ctx, path, 2*time.Millisecond)

	rep := &StreamReport{
		Dims:    append([]int(nil), cfg.Dims...),
		Rank:    rank,
		InitNNZ: x.NNZ(),
		InitFit: res.Fit(),
	}
	pl, err := stream.NewPipeline(src, u, pub, stream.Config{
		WindowSize:     cfg.WindowSize,
		MaxWait:        5 * time.Millisecond,
		PublishEvery:   1,
		FullSweepEvery: cfg.FullSweepEvery,
		MaxWindows:     cfg.Windows,
		Queue:          stream.QueueConfig{Depth: 4 * cfg.WindowSize, Policy: stream.Block},
		OnWindow: func(ws stream.WindowStats) {
			rep.Rows = append(rep.Rows, StreamWindowRow{
				Window:      ws.Window,
				Events:      ws.Update.Events,
				TouchedRows: ws.Update.TouchedRows,
				NNZ:         ws.Update.NNZ,
				UpdateMs:    ws.Update.DurationMs,
				LagMs:       ws.LagMs,
				FullSweep:   ws.FullSweep,
				Version:     ws.Version,
			})
			if ws.LagMs > rep.MaxLagMs {
				rep.MaxLagMs = ws.LagMs
			}
		},
	})
	if err != nil {
		return nil, err
	}
	if err := pl.Run(ctx); err != nil {
		return nil, fmt.Errorf("experiments: stream pipeline failed: %w", err)
	}
	met := pl.Metrics()
	if met.Windows != cfg.Windows {
		return nil, fmt.Errorf("experiments: ran %d windows, want %d", met.Windows, cfg.Windows)
	}
	rep.Published = met.Published
	rep.FinalDims = u.Dims()
	rep.FinalNNZ = u.Tensor().NNZ()
	var sumMs float64
	for _, r := range rep.Rows {
		sumMs += r.UpdateMs
	}
	rep.MeanWindowMs = sumMs / float64(len(rep.Rows))

	// Wait for the watcher to reach the final published version.
	deadline := time.Now().Add(10 * time.Second)
	for s.Model().Iter != pub.Version() {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("experiments: server never reloaded to v%d (at %d)", pub.Version(), s.Model().Iter)
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := s.Stats()
	rep.ServerReloads = st.Reloads
	rep.ServedVersion = st.ModelVersion
	rep.ServedModelAge = st.ModelAgeSecs
	if rep.ServerReloads == 0 {
		return nil, fmt.Errorf("experiments: stream bench finished without a hot reload")
	}

	// Fit drift: streamed model vs a one-shot batch retrain on the SAME
	// final tensor with the same seed and the same total full-iteration
	// budget (initial iters + full sweeps the stream got).
	rep.StreamFit = u.Fit()
	batchIters := cfg.TrainIters
	if cfg.FullSweepEvery > 0 {
		batchIters += cfg.Windows / cfg.FullSweepEvery
	}
	final := u.Tensor().Clone()
	t0 := time.Now()
	batch, err := cpals.Solve(final, cpals.Options{Rank: rank, MaxIters: batchIters, Seed: p.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: batch retrain failed: %w", err)
	}
	batchTotal := time.Since(t0)
	rep.BatchFit = batch.Fit()
	rep.FitDrift = rep.BatchFit - rep.StreamFit
	// Per-refresh comparison: one full warm sweep over the final tensor is
	// what a non-incremental pipeline would pay per published version.
	rep.FullRetrainMs = float64(batchTotal.Nanoseconds()) / 1e6 / float64(batchIters)
	if rep.MeanWindowMs > 0 {
		rep.Speedup = rep.FullRetrainMs / rep.MeanWindowMs
	}
	return rep, nil
}

// WriteJSON marshals the streaming report with indentation.
func (r *StreamReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RenderStreamBench formats the streaming run as a text table.
func RenderStreamBench(r *StreamReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Streaming benchmark: %v rank %d, %d init nnz (fit %.3f) -> %d nnz, dims %v\n",
		r.Dims, r.Rank, r.InitNNZ, r.InitFit, r.FinalNNZ, r.FinalDims)
	fmt.Fprintf(&b, "%7s %8s %9s %9s %11s %9s %6s %8s\n",
		"window", "events", "touched", "nnz", "update(ms)", "lag(ms)", "sweep", "version")
	for _, row := range r.Rows {
		sweep := ""
		if row.FullSweep {
			sweep = "full"
		}
		fmt.Fprintf(&b, "%7d %8d %9d %9d %11.2f %9.2f %6s %8d\n",
			row.Window, row.Events, row.TouchedRows, row.NNZ, row.UpdateMs, row.LagMs, sweep, row.Version)
	}
	fmt.Fprintf(&b, "stream fit %.4f vs batch %.4f (drift %+.4f); mean window %.2f ms vs full sweep %.2f ms (%.1fx); max lag %.2f ms; %d versions, %d reloads\n",
		r.StreamFit, r.BatchFit, r.FitDrift, r.MeanWindowMs, r.FullRetrainMs, r.Speedup, r.MaxLagMs, r.Published, r.ServerReloads)
	return b.String()
}
