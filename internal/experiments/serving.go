package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cstf/internal/ckpt"
	"cstf/internal/cpals"
	"cstf/internal/serve"
	"cstf/internal/tensor"
)

// Serving benchmark: the paper's pipeline ends at trained factors, but the
// point of factorizing a recommender tensor is answering queries with it.
// ServeBench closes that loop end to end: train CP-ALS on a synthetic
// low-rank tensor, checkpoint it, serve the checkpoint through
// internal/serve, and drive a closed-loop client sweep — overwriting the
// checkpoint mid-sweep to prove hot reload drops nothing.

// ServeBenchConfig sizes the serving benchmark; tests shrink it.
type ServeBenchConfig struct {
	Dims             []int // tensor shape of the trained model
	NNZ              int   // nonzeros of the synthetic training tensor
	TrainIters       int   // ALS iterations before the first checkpoint
	Clients          []int // closed-loop client sweep
	RequestsPerPhase int   // requests per client count
	HotRows          float64
}

// DefaultServeBenchConfig returns the `cstf-bench -exp serve` sizing.
func DefaultServeBenchConfig() ServeBenchConfig {
	return ServeBenchConfig{
		Dims:             []int{30000, 20000, 10000},
		NNZ:              200000,
		TrainIters:       5,
		Clients:          []int{1, 4, 16},
		RequestsPerPhase: 2000,
		HotRows:          0.3,
	}
}

// ServeBenchRow is one client count's measured throughput and latency.
type ServeBenchRow struct {
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	Shed      int     `json:"shed"`
	QPS       float64 `json:"qps"`
	P50Micros float64 `json:"p50_micros"`
	P95Micros float64 `json:"p95_micros"`
	P99Micros float64 `json:"p99_micros"`
}

// ServeReport is the machine-readable result of ServeBench
// (results/BENCH_serve.json).
type ServeReport struct {
	Dims       []int           `json:"dims"`
	Rank       int             `json:"rank"`
	TrainIters int             `json:"train_iters"`
	Fit        float64         `json:"fit"`
	Rows       []ServeBenchRow `json:"rows"`
	Reloads    uint64          `json:"reloads"` // hot reloads during the sweep (must be >= 1)
	ReloadErrs uint64          `json:"reload_errors"`
	CacheHits  uint64          `json:"cache_hits"`
	Batches    uint64          `json:"batches"`
	MaxBatch   uint64          `json:"max_batch"`

	// Fleet is the horizontal-scaling section (router + replica fleet);
	// see FleetBench. Populated by `cstf-bench -exp serve`.
	Fleet *FleetReport `json:"fleet,omitempty"`
}

// ServeBench runs the serving benchmark with the default sizing.
func ServeBench(p Params) (*ServeReport, error) {
	return ServeBenchWith(p, DefaultServeBenchConfig())
}

// ServeBenchWith trains, checkpoints, serves, and load-tests a CP model.
// Between the first and second client phases the checkpoint file is
// overwritten and the benchmark waits for the watcher to hot-reload it, so
// every later phase runs against the swapped model; any query error —
// including during the swap — fails the benchmark.
func ServeBenchWith(p Params, cfg ServeBenchConfig) (*ServeReport, error) {
	rank := p.Rank
	if rank < 2 {
		rank = 2
	}
	x := tensor.GenLowRank(p.Seed, cfg.NNZ, rank, 0.1, cfg.Dims...)
	res, err := cpals.Solve(x, cpals.Options{Rank: rank, MaxIters: cfg.TrainIters, Seed: p.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: serve bench training failed: %w", err)
	}

	dir, err := os.MkdirTemp("", "cstf-serve-bench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.ckpt")
	if err := writeServeCheckpoint(path, p.Seed, res, cfg.Dims, res.Iters); err != nil {
		return nil, err
	}

	m, err := serve.LoadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	s, err := serve.New(m, serve.Config{})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Watch(ctx, path, 2*time.Millisecond)

	rep := &ServeReport{
		Dims:       cfg.Dims,
		Rank:       rank,
		TrainIters: res.Iters,
		Fit:        res.Fit(),
	}
	for phase, clients := range cfg.Clients {
		st := serve.RunLoad(ctx, s, serve.LoadOptions{
			Clients:  clients,
			Requests: cfg.RequestsPerPhase,
			Seed:     p.Seed + uint64(phase),
			HotRows:  cfg.HotRows,
		})
		rep.Rows = append(rep.Rows, ServeBenchRow{
			Clients:   st.Clients,
			Requests:  st.Requests,
			Errors:    st.Errors,
			Shed:      st.Shed,
			QPS:       st.QPS,
			P50Micros: float64(st.P50.Nanoseconds()) / 1e3,
			P95Micros: float64(st.P95.Nanoseconds()) / 1e3,
			P99Micros: float64(st.P99.Nanoseconds()) / 1e3,
		})
		if st.Errors > 0 {
			return nil, fmt.Errorf("experiments: %d queries failed at %d clients", st.Errors, clients)
		}
		if phase == 0 {
			// Overwrite the model under the running server and require the
			// watcher to pick it up before the next phase queries it.
			if err := writeServeCheckpoint(path, p.Seed, res, cfg.Dims, res.Iters+1); err != nil {
				return nil, err
			}
			deadline := time.Now().Add(5 * time.Second)
			for s.Stats().Reloads == 0 {
				if time.Now().After(deadline) {
					return nil, fmt.Errorf("experiments: watcher never reloaded the overwritten checkpoint")
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}
	st := s.Stats()
	rep.Reloads = st.Reloads
	rep.ReloadErrs = st.ReloadErrors
	rep.CacheHits = st.CacheHits
	rep.Batches = st.Batches
	rep.MaxBatch = st.MaxBatch
	if rep.Reloads == 0 {
		return nil, fmt.Errorf("experiments: serve bench finished without a hot reload")
	}
	if rep.ReloadErrs != 0 {
		return nil, fmt.Errorf("experiments: %d reload errors during serve bench", rep.ReloadErrs)
	}
	return rep, nil
}

// writeServeCheckpoint stores a solved model in the shared checkpoint
// schema, as `cstf -checkpoint` would.
func writeServeCheckpoint(path string, seed uint64, res *cpals.Result, dims []int, iter int) error {
	cp := &ckpt.File{
		Algorithm: "serial",
		Rank:      len(res.Lambda),
		Seed:      seed,
		Iter:      iter,
		Dims:      append([]int(nil), dims...),
		Lambda:    res.Lambda,
		Fits:      append(append([]float64(nil), res.Fits...), make([]float64, iter-res.Iters)...),
	}
	for _, f := range res.Factors {
		cp.Factors = append(cp.Factors, f.Data)
	}
	return ckpt.Write(path, cp)
}

// WriteJSON marshals the serving report with indentation.
func (r *ServeReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RenderServeBench formats the serving sweep as a text table.
func RenderServeBench(r *ServeReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serving benchmark: %v rank %d (fit %.3f after %d iters), hot reloads %d\n",
		r.Dims, r.Rank, r.Fit, r.TrainIters, r.Reloads)
	fmt.Fprintf(&b, "%8s %9s %7s %6s %10s %10s %10s %10s\n",
		"clients", "requests", "errors", "shed", "qps", "p50(us)", "p95(us)", "p99(us)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %9d %7d %6d %10.0f %10.1f %10.1f %10.1f\n",
			row.Clients, row.Requests, row.Errors, row.Shed, row.QPS,
			row.P50Micros, row.P95Micros, row.P99Micros)
	}
	return b.String()
}
