package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"cstf/internal/cpals"
	"cstf/internal/fleet"
	"cstf/internal/la"
	"cstf/internal/ntf"
	"cstf/internal/rank"
	"cstf/internal/rng"
	"cstf/internal/serve"
	"cstf/internal/stream"
	"cstf/internal/tensor"
)

// Recommender benchmark: the end-to-end scenario ROADMAP item 4 asks for.
// A planted (users x items x contexts) implicit-feedback tensor is split
// into train/held-out interactions (rank.Split), the training set is
// further carved into an initial batch and a stream of future
// interactions, and the initial batch is factorized twice — nonnegative CP
// (ncp, checked bitwise-repeatable) and plain CP-ALS. Both models are
// scored as recommenders (HR@K / NDCG@K over the held-out interactions,
// training items excluded) against the popularity baseline; a model that
// cannot beat popularity fails the benchmark. Then the streamed
// interactions flow through the live path — stream.Updater incremental
// update, Publisher checkpoint, hot reload on every replica of a sharded
// serving fleet — measuring per-window freshness lag (event arrival to
// every replica serving the new version) and verifying, each window, that
// the fleet's scatter-gathered TopK with an exclude set is bitwise-equal
// to a single-node scan of the freshly published model. A final
// evaluation scores the streamed-up-to-date model, closing the
// before/after freshness loop. The streamed refreshes are the updater's
// least-squares restricted sweeps, so the served factors may drift
// slightly negative between full nonnegative retrains; ranking quality is
// what the final evaluation measures.

// RecsysBenchConfig sizes the recommender benchmark; tests shrink it.
type RecsysBenchConfig struct {
	Users    int
	Items    int
	Contexts int
	// Groups is the planted interest-group count and the factorization
	// rank — rank.Split and the generator share cfg.GenSeed, so the bench
	// evaluates against the same truth `tensorgen -recsys` emits.
	Groups      int
	NNZ         int     // interactions generated (before dedup)
	Noise       float64 // nonnegative value noise
	GenSeed     uint64  // generator + split seed
	TrainIters  int     // solver sweeps for both ncp and cp-als
	K           int     // ranking cutoff (HR@K, NDCG@K)
	StreamPct   int     // percent of training interactions arriving as the stream
	Windows     int     // streamed delta windows (acceptance needs >= 3)
	Replicas    int     // serving fleet size (sharded scatter-gather)
	FleetProbes int     // exclude-set TopK probes per window
}

// DefaultRecsysBenchConfig returns the `cstf-bench -exp recsys` sizing.
func DefaultRecsysBenchConfig() RecsysBenchConfig {
	return RecsysBenchConfig{
		Users:       600,
		Items:       400,
		Contexts:    4,
		Groups:      4,
		NNZ:         60000,
		Noise:       0.02,
		GenSeed:     11,
		TrainIters:  20,
		K:           10,
		StreamPct:   10,
		Windows:     4,
		Replicas:    3,
		FleetProbes: 5,
	}
}

// RecsysWindowRow is one streamed window's measurements.
type RecsysWindowRow struct {
	Window      int     `json:"window"`
	Events      int     `json:"events"`
	TouchedRows int     `json:"touched_rows"`
	UpdateMs    float64 `json:"update_ms"`
	// LagMs is the freshness lag: event arrival to EVERY fleet replica
	// serving the newly published version.
	LagMs   float64 `json:"lag_ms"`
	Version int     `json:"version"`
	// FleetMatch: every probe's sharded TopK-with-exclude through the
	// router was bitwise-equal to a single-node scan of the same model.
	FleetMatch bool `json:"fleet_topk_match"`
}

// RecsysReport is the machine-readable result (results/BENCH_recsys.json).
type RecsysReport struct {
	Users    int `json:"users"`
	Items    int `json:"items"`
	Contexts int `json:"contexts"`
	Rank     int `json:"rank"`

	NNZ       int `json:"nnz"`        // generated tensor (after dedup)
	TrainNNZ  int `json:"train_nnz"`  // initial training batch
	StreamNNZ int `json:"stream_nnz"` // streamed interactions
	HeldNNZ   int `json:"held_nnz"`   // held-out evaluation cases

	TrainIters int `json:"train_iters"`
	K          int `json:"k"`

	NCPTrainMs float64 `json:"ncp_train_ms"`
	ALSTrainMs float64 `json:"cpals_train_ms"`
	NCPFit     float64 `json:"ncp_fit"`
	ALSFit     float64 `json:"cpals_fit"`
	// BitwiseRepeat: re-running the ncp training with the same seed
	// reproduced lambda and the factors bit for bit.
	BitwiseRepeat bool `json:"bitwise_repeat"`

	Popularity rank.Metrics `json:"popularity"`
	NCP        rank.Metrics `json:"ncp"`
	CPALS      rank.Metrics `json:"cpals"`
	// NCPAfter re-scores the model after all streamed windows are
	// incorporated and hot-reloaded — the "after updates" side of the
	// freshness story (PopularityAfter is its baseline on the same
	// grown training set).
	NCPAfter        rank.Metrics `json:"ncp_after_stream"`
	PopularityAfter rank.Metrics `json:"popularity_after_stream"`

	Rows     []RecsysWindowRow `json:"rows"`
	MaxLagMs float64           `json:"max_lag_ms"`

	Replicas       int    `json:"replicas"`
	Reloads        uint64 `json:"reloads"` // hot reloads summed over replicas
	ShardedQueries uint64 `json:"sharded_queries"`
}

// WriteJSON writes the report as indented JSON.
func (r *RecsysReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RecsysBench runs the recommender benchmark with the default sizing.
func RecsysBench(p Params) (*RecsysReport, error) {
	return RecsysBenchWith(p, DefaultRecsysBenchConfig())
}

// RecsysBenchWith generates, splits, trains, evaluates, streams, and
// serves. Any invariant violation — a model losing to popularity, a
// non-bitwise ncp repeat, a fleet TopK diverging from single-node, a
// replica that never reloads — fails the benchmark.
func RecsysBenchWith(p Params, cfg RecsysBenchConfig) (*RecsysReport, error) {
	r := cfg.Groups
	if r < 2 {
		r = 2
	}
	x := tensor.GenRecsys(cfg.GenSeed, cfg.NNZ, cfg.Users, cfg.Items, cfg.Contexts, cfg.Groups, cfg.Noise)
	train, held, err := rank.Split(x, cfg.GenSeed, 0)
	if err != nil {
		return nil, err
	}

	// Carve the training interactions into the initial batch and the
	// stream by a per-entry coordinate hash — deterministic, and disjoint
	// by construction since train's coordinates are unique.
	base := tensor.New(train.Dims...)
	var streamed []tensor.Entry
	order := len(train.Dims)
	for i := range train.Entries {
		e := &train.Entries[i]
		parts := make([]uint64, 0, order+2)
		parts = append(parts, cfg.GenSeed, 0x5EED)
		for n := 0; n < order; n++ {
			parts = append(parts, uint64(e.Idx[n]))
		}
		if int(rng.Hash64(parts...)%100) < cfg.StreamPct {
			streamed = append(streamed, *e)
		} else {
			base.Entries = append(base.Entries, *e)
		}
	}
	if base.NNZ() == 0 || len(streamed) < cfg.Windows {
		return nil, fmt.Errorf("experiments: recsys carve left %d base / %d streamed nonzeros", base.NNZ(), len(streamed))
	}

	rep := &RecsysReport{
		Users: cfg.Users, Items: cfg.Items, Contexts: cfg.Contexts, Rank: r,
		NNZ: x.NNZ(), TrainNNZ: base.NNZ(), StreamNNZ: len(streamed), HeldNNZ: held.NNZ(),
		TrainIters: cfg.TrainIters, K: cfg.K, Replicas: cfg.Replicas,
	}

	ncpOpts := ntf.Options{Rank: r, MaxIters: cfg.TrainIters, Seed: p.Seed}
	benchSettle()
	start := time.Now()
	ncpRes, err := ntf.Solve(base, ncpOpts)
	if err != nil {
		return nil, fmt.Errorf("experiments: recsys ncp training failed: %w", err)
	}
	rep.NCPTrainMs = time.Since(start).Seconds() * 1e3
	rep.NCPFit = ncpRes.Fit()
	repeat, err := ntf.Solve(base, ncpOpts)
	if err != nil {
		return nil, err
	}
	rep.BitwiseRepeat = bitwiseEqual(ncpRes, repeat)
	if !rep.BitwiseRepeat {
		return nil, fmt.Errorf("experiments: recsys ncp repeat was not bitwise-identical")
	}

	benchSettle()
	start = time.Now()
	alsRes, err := cpals.Solve(base, cpals.Options{Rank: r, MaxIters: cfg.TrainIters, Seed: p.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: recsys cp-als training failed: %w", err)
	}
	rep.ALSTrainMs = time.Since(start).Seconds() * 1e3
	rep.ALSFit = alsRes.Fit()

	// Ranking quality before any streamed update, all against the same
	// held-out truths with the same per-user exclusions.
	if rep.Popularity, err = rank.EvalPopularity(base, held, 0, 1, cfg.K); err != nil {
		return nil, err
	}
	mNCP, err := serve.NewModel(la.VecClone(ncpRes.Lambda), cloneFactorList(ncpRes.Factors), 1, 0)
	if err != nil {
		return nil, err
	}
	if rep.NCP, err = rank.EvalModel(mNCP, base, held, 0, 1, cfg.K); err != nil {
		return nil, err
	}
	mALS, err := serve.NewModel(la.VecClone(alsRes.Lambda), cloneFactorList(alsRes.Factors), 1, 0)
	if err != nil {
		return nil, err
	}
	if rep.CPALS, err = rank.EvalModel(mALS, base, held, 0, 1, cfg.K); err != nil {
		return nil, err
	}
	for _, m := range []struct {
		name string
		got  rank.Metrics
	}{{"ncp", rep.NCP}, {"cp-als", rep.CPALS}} {
		if m.got.HR <= rep.Popularity.HR || m.got.NDCG <= rep.Popularity.NDCG {
			return nil, fmt.Errorf("experiments: %s (HR %.3f, NDCG %.3f) did not beat popularity (HR %.3f, NDCG %.3f)",
				m.name, m.got.HR, m.got.NDCG, rep.Popularity.HR, rep.Popularity.NDCG)
		}
	}

	// Live path: updater -> publisher -> watched checkpoint -> sharded
	// fleet. Every replica loads and watches the same published file, so
	// a publish becomes queryable only after each replica hot-reloads.
	u, err := stream.NewUpdaterFromResult(base, ncpRes, p.Seed, 0)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "cstf-recsys-bench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.ckpt")
	pub := stream.NewPublisher(path, p.Seed)
	if _, err := pub.Publish(u, u.Fit()); err != nil {
		return nil, err
	}

	lf, err := fleet.StartLocal(cfg.Replicas, func(int) (*serve.Model, error) {
		return serve.LoadCheckpoint(path)
	}, serve.Config{}, serve.HandlerConfig{})
	if err != nil {
		return nil, err
	}
	defer lf.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, rp := range lf.Replicas {
		rp.Server.Watch(ctx, path, 2*time.Millisecond)
	}
	rt, err := fleet.New(fleet.Config{
		Replicas:      lf.Configs(),
		Shard:         true,
		ProbeInterval: 50 * time.Millisecond,
		Timeout:       30 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()

	for w := 0; w < cfg.Windows; w++ {
		lo, hi := len(streamed)*w/cfg.Windows, len(streamed)*(w+1)/cfg.Windows
		chunk := streamed[lo:hi]
		start = time.Now()
		st, err := u.ApplyDelta(chunk)
		if err != nil {
			return nil, fmt.Errorf("experiments: recsys window %d update failed: %w", w, err)
		}
		ver, err := pub.Publish(u, u.Fit())
		if err != nil {
			return nil, err
		}
		deadline := time.Now().Add(15 * time.Second)
		for _, rp := range lf.Replicas {
			for rp.Server.Model().Iter != ver {
				if time.Now().After(deadline) {
					return nil, fmt.Errorf("experiments: replica %s never reloaded to v%d", rp.Name, ver)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
		lagMs := time.Since(start).Seconds() * 1e3

		// Exclude-set probes: the fleet's scatter-gathered TopK with the
		// user's seen items excluded must be bitwise-equal to a
		// single-node scan of the same published model.
		single, err := serve.LoadCheckpoint(path)
		if err != nil {
			return nil, err
		}
		match := true
		for j := 0; j < cfg.FleetProbes; j++ {
			user := int(rng.Hash64(cfg.GenSeed, 0xF1EE, uint64(w), uint64(j)) % uint64(cfg.Users))
			excl := seenItemRows(u.Tensor(), 0, 1, user)
			got, err := rt.TopKExclude(ctx, 1, 0, user, cfg.K, excl)
			if err != nil {
				return nil, fmt.Errorf("experiments: recsys fleet probe failed: %w", err)
			}
			want, err := single.TopKGivenRangeExclude(1, 0, user, cfg.K, 0, cfg.Items, excl)
			if err != nil {
				return nil, err
			}
			if !sameScoredBits(got, want) {
				match = false
			}
		}
		if !match {
			return nil, fmt.Errorf("experiments: recsys window %d fleet TopK diverged from single-node", w)
		}

		rep.Rows = append(rep.Rows, RecsysWindowRow{
			Window: w, Events: st.Events, TouchedRows: st.TouchedRows,
			UpdateMs: st.DurationMs, LagMs: lagMs, Version: ver, FleetMatch: match,
		})
		if lagMs > rep.MaxLagMs {
			rep.MaxLagMs = lagMs
		}
	}

	for _, rp := range lf.Replicas {
		reloads := rp.Server.Stats().Reloads
		if reloads < uint64(cfg.Windows) {
			return nil, fmt.Errorf("experiments: replica %s reloaded %d times for %d windows", rp.Name, reloads, cfg.Windows)
		}
		rep.Reloads += reloads
	}
	rep.ShardedQueries = rt.Stats().Sharded

	// After the stream: the served model has incorporated every window;
	// u.Tensor() is exactly the full training set again (base and stream
	// partition it), so before/after numbers share held-out truths while
	// the exclusions grow with the new interactions.
	final, err := serve.LoadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	if rep.NCPAfter, err = rank.EvalModel(final, u.Tensor(), held, 0, 1, cfg.K); err != nil {
		return nil, err
	}
	if rep.PopularityAfter, err = rank.EvalPopularity(u.Tensor(), held, 0, 1, cfg.K); err != nil {
		return nil, err
	}
	return rep, nil
}

// seenItemRows collects the sorted distinct itemMode rows the user row has
// interacted with in t — the exclude set a recommender query carries.
func seenItemRows(t *tensor.COO, userMode, itemMode, user int) []int {
	set := make(map[int]bool)
	for i := range t.Entries {
		if int(t.Entries[i].Idx[userMode]) == user {
			set[int(t.Entries[i].Idx[itemMode])] = true
		}
	}
	out := make([]int, 0, len(set))
	for it := range set {
		out = append(out, it)
	}
	sort.Ints(out)
	return out
}

// sameScoredBits compares ranked results bitwise (index and score bits).
func sameScoredBits(a, b []serve.Scored) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Index != b[i].Index ||
			math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			return false
		}
	}
	return true
}

func cloneFactorList(fs []*la.Dense) []*la.Dense {
	out := make([]*la.Dense, len(fs))
	for i, f := range fs {
		out[i] = f.Clone()
	}
	return out
}

// RenderRecsysBench formats the recommender report as text tables.
func RenderRecsysBench(r *RecsysReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Recommender benchmark: %d users x %d items x %d contexts, %d nnz, rank %d, %d iters\n",
		r.Users, r.Items, r.Contexts, r.NNZ, r.Rank, r.TrainIters)
	fmt.Fprintf(&b, "split: %d train + %d streamed + %d held-out; ncp fit %.4f in %.0f ms (bitwise repeat %v), cp-als fit %.4f in %.0f ms\n",
		r.TrainNNZ, r.StreamNNZ, r.HeldNNZ, r.NCPFit, r.NCPTrainMs, r.BitwiseRepeat, r.ALSFit, r.ALSTrainMs)
	fmt.Fprintf(&b, "%-14s %8s %10s\n", "model", fmt.Sprintf("HR@%d", r.K), fmt.Sprintf("NDCG@%d", r.K))
	row := func(name string, m rank.Metrics) {
		fmt.Fprintf(&b, "%-14s %8.4f %10.4f\n", name, m.HR, m.NDCG)
	}
	row("popularity", r.Popularity)
	row("cp-als", r.CPALS)
	row("ncp", r.NCP)
	row("ncp+stream", r.NCPAfter)
	row("pop+stream", r.PopularityAfter)
	fmt.Fprintf(&b, "%7s %8s %9s %11s %9s %8s %6s\n",
		"window", "events", "touched", "update(ms)", "lag(ms)", "version", "fleet")
	for _, w := range r.Rows {
		fleetCol := "match"
		if !w.FleetMatch {
			fleetCol = "DIFF"
		}
		fmt.Fprintf(&b, "%7d %8d %9d %11.2f %9.2f %8d %6s\n",
			w.Window, w.Events, w.TouchedRows, w.UpdateMs, w.LagMs, w.Version, fleetCol)
	}
	fmt.Fprintf(&b, "freshness: max lag %.2f ms across %d windows; %d replicas, %d hot reloads, %d sharded queries\n",
		r.MaxLagMs, len(r.Rows), r.Replicas, r.Reloads, r.ShardedQueries)
	return b.String()
}
