package experiments

// ExperimentInfo names one cstf-bench experiment. The registry below is
// the single source of truth for `cstf-bench -list`, the -exp usage text,
// and the order `-exp all` runs experiments in — the binary has no
// experiment list of its own, so a new benchmark added here shows up
// everywhere at once.
type ExperimentInfo struct {
	Name string
	Desc string
}

// Experiments returns the registry in run order.
func Experiments() []ExperimentInfo {
	return []ExperimentInfo{
		{"table5", "modeled Table 5 dataset statistics"},
		{"table4", "modeled memory footprint per algorithm (Table 4)"},
		{"fig2", "modeled time per iteration across datasets (Figure 2)"},
		{"fig3", "modeled network traffic across datasets (Figure 3)"},
		{"fig4", "modeled shuffle reduction of QCOO (Figure 4)"},
		{"fig5", "modeled per-mode behavior (Figure 5)"},
		{"ablations", "caching, gram reuse, rank/order sweeps, resilience, partitions"},
		{"faults", "crash/straggler/checkpoint sweeps on the simulated cluster (writes BENCH_faults.json)"},
		{"serve", "train, checkpoint, serve, load-test the query tier (writes BENCH_serve.json)"},
		{"stream", "streaming ingest + incremental factor updates (writes BENCH_stream.json)"},
		{"dist", "real TCP workers vs single-process, bitwise-checked (writes BENCH_dist.json)"},
		{"rals", "randomized sampled ALS vs exact across budgets, bitwise-checked (writes BENCH_rals.json)"},
		{"recsys", "recommender: ncp vs cpals vs popularity, streamed updates + fleet TopK (writes BENCH_recsys.json)"},
		{"json", "machine-readable report of the modeled experiments (writes report.json)"},
	}
}
