package experiments

import (
	"fmt"

	"cstf/internal/bigtensor"
	"cstf/internal/core"
	"cstf/internal/workload"
)

// ---------------------------------------------------------------------------
// Table 4: cost comparison of BIGtensor, CSTF-COO and CSTF-QCOO for a
// 3rd-order mode-1 MTTKRP: flops, intermediate data, shuffle operations.
// Flops and shuffles are MEASURED from the engines; intermediate data is
// the per-record working-set size, which follows the paper's analytic
// accounting (it is a storage property, not an event the metrics see).
// ---------------------------------------------------------------------------

// Table4Row is one line of Table 4. Paper columns are the closed forms of
// Section 5; Measured columns come from the instrumented engines.
type Table4Row struct {
	Algo              Algo
	MeasuredFlops     float64
	PaperFlops        float64 // closed form: 5nnzR / 3nnzR / 3nnzR
	IntermediateBytes float64 // analytic, paper's units (8-byte words)
	PaperIntermediate string  // the paper's symbolic entry
	MeasuredShuffles  int
	PaperShuffles     int
}

// Table4 measures one mode-1 MTTKRP per algorithm on the delicious3d
// configuration.
func Table4(p Params) ([]Table4Row, error) {
	x, cfg, err := p.generate("delicious3d")
	if err != nil {
		return nil, err
	}
	nnz := float64(x.NNZ())
	r := float64(p.Rank)
	_ = cfg

	rows := make([]Table4Row, 0, 3)

	// BIGtensor.
	{
		env := p.hadoopEnv(8)
		s, err := bigtensor.New(env, x, p.Rank, p.Seed)
		if err != nil {
			return nil, err
		}
		env.C.ResetMetrics()
		s.MTTKRP(0)
		m := env.C.Metrics()
		maxJK := float64(max(x.Dims[1], x.Dims[2]))
		rows = append(rows, Table4Row{
			Algo:              AlgoBig,
			MeasuredFlops:     m.Flops["MTTKRP-1"],
			PaperFlops:        5 * nnz * r,
			IntermediateBytes: 8 * (maxJK + nnz),
			PaperIntermediate: "max(J+nnz, K+nnz)",
			MeasuredShuffles:  m.Shuffles["MTTKRP-1"],
			PaperShuffles:     4,
		})
	}

	// CSTF-COO: measure the second MTTKRP of mode 1 (steady state).
	{
		ctx := p.sparkCtx(8)
		s := core.NewCOOState(ctx, x, p.Rank, p.Seed)
		for n := 0; n < 3; n++ {
			s.Step(n)
		}
		before := ctx.Cluster.Metrics()
		s.Step(0)
		m := ctx.Cluster.Metrics().Sub(before)
		rows = append(rows, Table4Row{
			Algo:              AlgoCOO,
			MeasuredFlops:     m.Flops["MTTKRP-1"],
			PaperFlops:        3 * nnz * r,
			IntermediateBytes: 8 * nnz * r,
			PaperIntermediate: "nnz x R",
			MeasuredShuffles:  m.Shuffles["MTTKRP-1"],
			PaperShuffles:     3,
		})
	}

	// CSTF-QCOO: steady state likewise.
	{
		ctx := p.sparkCtx(8)
		s := core.NewQCOOState(ctx, x, p.Rank, p.Seed)
		for n := 0; n < 3; n++ {
			s.Step(n)
		}
		before := ctx.Cluster.Metrics()
		s.Step(0)
		m := ctx.Cluster.Metrics().Sub(before)
		rows = append(rows, Table4Row{
			Algo:              AlgoQ,
			MeasuredFlops:     m.Flops["MTTKRP-1"],
			PaperFlops:        3 * nnz * r,
			IntermediateBytes: 2 * 8 * nnz * r,
			PaperIntermediate: "2 x nnz x R",
			MeasuredShuffles:  m.Shuffles["MTTKRP-1"],
			PaperShuffles:     2,
		})
	}
	return rows, nil
}

// Table5 formats the dataset summary table at full scale, plus the scaled
// sizes actually generated.
func Table5(p Params) []string {
	out := []string{
		"Dataset      | Order | Max mode | nnz   | Density   (scaled nnz @ " +
			fmt.Sprintf("%.0e)", p.Scale),
	}
	for _, c := range workload.Datasets() {
		out = append(out, fmt.Sprintf("%s   (%d)", c.Table5Row(), c.ScaledNNZ(p.Scale)))
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
