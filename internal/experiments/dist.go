package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"cstf/internal/chaos"
	"cstf/internal/cpals"
	"cstf/internal/dist"
	"cstf/internal/tensor"
)

// Distributed-runtime benchmark: the same planted CP-ALS problem solved by
// the single-process reference and by the real TCP runtime. Everything
// reported for the distributed runs is MEASURED — wall clock and bytes on
// actual sockets — unlike the simulated-cluster experiments; and every run
// is checked bitwise against the matching serial solver, so the table
// doubles as the determinism acceptance test at benchmark scale.
//
// Two regimes are benchmarked:
//
//   - compute: a 4-mode dense-block tensor where the SPLATT CSF shard
//     kernel does algorithmically fewer flops than the COO loop, so the
//     distributed runtime beats the serial COO reference on wall clock.
//   - wire: a 3-mode tensor with large factor matrices and block-local
//     nonzeros, where each worker touches a small fraction of every
//     factor. Delta broadcasts are A/B'd against full-factor broadcasts
//     (Config.NoDelta) to measure the factor-wire reduction.

// DistBenchConfig sizes one distributed benchmark regime; tests shrink it.
type DistBenchConfig struct {
	Dims       []int   // planted tensor shape
	NNZ        int     // nonzeros
	TrueRank   int     // planted rank
	Rank       int     // decomposition rank (0 = Params.Rank)
	Block      int     // dense-block side (GenBlockSparse); 0 = GenLowRank
	Noise      float64 // additive noise level
	GenSeed    uint64  // tensor generator seed
	Iters      int     // ALS iterations
	WorkerSets []int   // worker counts to run
	CSF        bool    // dist rows use the SPLATT CSF shard kernel
	DeltaAB    bool    // add a full-broadcast (NoDelta) A/B row per worker count
	Chaos      bool    // add a mid-run worker-crash row at the max worker count
}

// ComputeDistBenchConfig returns the compute-regime sizing: 4-mode dense
// blocks, CSF-favorable, where the distributed runtime must beat serial.
func ComputeDistBenchConfig() DistBenchConfig {
	return DistBenchConfig{
		Dims:       []int{600, 500, 400, 300},
		NNZ:        500000,
		TrueRank:   4,
		Rank:       16,
		Block:      10,
		Noise:      0.01,
		GenSeed:    11,
		Iters:      40,
		WorkerSets: []int{1, 2, 4},
		CSF:        true,
		Chaos:      true,
	}
}

// WireDistBenchConfig returns the communication-regime sizing: large factor
// matrices, block-local nonzeros, delta vs full broadcasts A/B'd.
func WireDistBenchConfig() DistBenchConfig {
	return DistBenchConfig{
		Dims:       []int{3000, 2800, 2600},
		NNZ:        300000,
		TrueRank:   4,
		Rank:       16,
		Block:      20,
		Noise:      0.01,
		GenSeed:    13,
		Iters:      20,
		WorkerSets: []int{4, 8},
		CSF:        true,
		DeltaAB:    true,
	}
}

// DistRow is one configuration's measurements.
type DistRow struct {
	// Serial marks the single-process reference rows; Workers is omitted
	// for them (rather than the old ambiguous `workers: 0`).
	Serial          bool    `json:"serial,omitempty"`
	Workers         int     `json:"workers,omitempty"`
	Kernel          string  `json:"kernel"` // "coo" or "csf"
	DeltaBroadcast  bool    `json:"delta_broadcast"`
	Pipelined       bool    `json:"pipelined"`
	Chaos           bool    `json:"chaos,omitempty"` // mid-run worker crash injected
	WallMs          float64 `json:"wall_ms"`
	WireSentMB      float64 `json:"wire_sent_mb"`
	WireRecvMB      float64 `json:"wire_recv_mb"`
	WireShardMB     float64 `json:"wire_shard_mb"`
	WireFactorMB    float64 `json:"wire_factor_mb"`
	WireDeltaFrames int     `json:"wire_delta_frames"`
	Resyncs         int     `json:"factor_resyncs,omitempty"`
	Fit             float64 `json:"fit"`
	BitwiseSame     bool    `json:"bitwise_equal_to_serial"`
	Speedup         float64 `json:"speedup_vs_serial"`
}

// DistReport is one regime's machine-readable result.
type DistReport struct {
	Dims  []int     `json:"dims"`
	NNZ   int       `json:"nnz"`
	Rank  int       `json:"rank"`
	Iters int       `json:"iters"`
	Block int       `json:"block,omitempty"`
	Rows  []DistRow `json:"rows"`
	// AllExact: every distributed row matched its same-kernel serial
	// reference bit for bit.
	AllExact bool `json:"all_bitwise_equal"`
	// FactorWireReduction is full/delta factor-broadcast bytes at the
	// largest A/B'd worker count (0 when DeltaAB was off).
	FactorWireReduction float64 `json:"factor_wire_reduction_vs_full,omitempty"`
}

// DistBenchReport bundles both regimes (results/BENCH_dist.json).
type DistBenchReport struct {
	Compute  *DistReport `json:"compute"`
	Wire     *DistReport `json:"wire"`
	AllExact bool        `json:"all_bitwise_equal"`
}

// WriteJSON writes the report as indented JSON.
func (r *DistBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DistBench runs both regimes with the default sizing.
func DistBench(p Params) (*DistBenchReport, error) {
	comp, err := DistBenchWith(p, ComputeDistBenchConfig())
	if err != nil {
		return nil, err
	}
	wire, err := DistBenchWith(p, WireDistBenchConfig())
	if err != nil {
		return nil, err
	}
	return &DistBenchReport{
		Compute:  comp,
		Wire:     wire,
		AllExact: comp.AllExact && wire.AllExact,
	}, nil
}

// benchSettle reduces run-to-run interference between timed rows.
func benchSettle() {
	runtime.GC()
	debug.FreeOSMemory()
}

// DistBenchWith generates the planted tensor, solves it serially (COO
// always, CSF additionally when the config uses the CSF shard kernel),
// then once per worker count over real TCP loopback workers, verifying
// bitwise identity against the same-kernel serial reference each time.
// Speedups are always relative to the serial COO row.
func DistBenchWith(p Params, cfg DistBenchConfig) (*DistReport, error) {
	rank := cfg.Rank
	if rank == 0 {
		rank = p.Rank
	}
	if rank < 2 {
		rank = 2
	}
	var x *tensor.COO
	if cfg.Block > 0 {
		x = tensor.GenBlockSparse(cfg.GenSeed, cfg.NNZ, cfg.TrueRank, cfg.Block, cfg.Noise, cfg.Dims...)
	} else {
		x = tensor.GenLowRank(cfg.GenSeed, cfg.NNZ, cfg.TrueRank, cfg.Noise, cfg.Dims...)
	}
	opts := cpals.Options{Rank: rank, MaxIters: cfg.Iters, Seed: p.Seed}

	rep := &DistReport{Dims: cfg.Dims, NNZ: x.NNZ(), Rank: rank, Iters: cfg.Iters, Block: cfg.Block, AllExact: true}

	benchSettle()
	start := time.Now()
	serialCOO, err := cpals.Solve(x, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: dist bench serial solve failed: %w", err)
	}
	cooMs := time.Since(start).Seconds() * 1e3
	rep.Rows = append(rep.Rows, DistRow{
		Serial: true, Kernel: "coo", WallMs: cooMs,
		Fit: serialCOO.Fit(), BitwiseSame: true, Speedup: 1,
	})

	// The bitwise reference for dist rows matches the shard kernel: COO
	// workers reproduce the COO solver, CSF workers the CSF solver.
	reference := serialCOO
	kernel := "coo"
	if cfg.CSF {
		kernel = "csf"
		csfOpts := opts
		csfOpts.CSFKernel = true
		benchSettle()
		start = time.Now()
		serialCSF, err := cpals.Solve(x, csfOpts)
		if err != nil {
			return nil, fmt.Errorf("experiments: dist bench serial CSF solve failed: %w", err)
		}
		csfMs := time.Since(start).Seconds() * 1e3
		reference = serialCSF
		rep.Rows = append(rep.Rows, DistRow{
			Serial: true, Kernel: "csf", WallMs: csfMs,
			Fit: serialCSF.Fit(), BitwiseSame: true, Speedup: cooMs / csfMs,
		})
	}

	distRow := func(n int, noDelta, withChaos bool) (DistRow, error) {
		benchSettle()
		lc, err := dist.StartInProcess(n)
		if err != nil {
			return DistRow{}, err
		}
		dc := lc.Config()
		dc.UseCSF = cfg.CSF
		dc.NoDelta = noDelta
		if withChaos {
			// Crash a mid-rank worker a few stages in; the run must still
			// finish and still match the serial reference bit for bit.
			dc.Plan = chaos.NewPlanFromEvents(chaos.Event{Kind: chaos.NodeCrash, Node: n / 2, Stage: 4})
		}
		res, stats, err := dist.Solve(x, opts, dc)
		lc.Close()
		if err != nil {
			return DistRow{}, fmt.Errorf("experiments: dist bench with %d workers failed: %w", n, err)
		}
		wallMs := stats.WallSeconds * 1e3
		return DistRow{
			Workers:         n,
			Kernel:          kernel,
			DeltaBroadcast:  !noDelta,
			Pipelined:       true,
			Chaos:           withChaos,
			WallMs:          wallMs,
			WireSentMB:      float64(stats.BytesSent) / 1e6,
			WireRecvMB:      float64(stats.BytesRecv) / 1e6,
			WireShardMB:     float64(stats.ShardBytes) / 1e6,
			WireFactorMB:    float64(stats.FactorBytes) / 1e6,
			WireDeltaFrames: stats.DeltaFrames,
			Resyncs:         stats.Resyncs,
			Fit:             res.Fit(),
			BitwiseSame:     bitwiseEqual(reference, res),
			Speedup:         cooMs / wallMs,
		}, nil
	}

	var deltaMB, fullMB float64
	for _, n := range cfg.WorkerSets {
		row, err := distRow(n, false, false)
		if err != nil {
			return nil, err
		}
		if !row.BitwiseSame {
			rep.AllExact = false
		}
		deltaMB = row.WireFactorMB
		rep.Rows = append(rep.Rows, row)
		if cfg.DeltaAB {
			full, err := distRow(n, true, false)
			if err != nil {
				return nil, err
			}
			if !full.BitwiseSame {
				rep.AllExact = false
			}
			fullMB = full.WireFactorMB
			rep.Rows = append(rep.Rows, full)
		}
	}
	if cfg.DeltaAB && deltaMB > 0 {
		rep.FactorWireReduction = fullMB / deltaMB
	}
	if cfg.Chaos && len(cfg.WorkerSets) > 0 {
		n := cfg.WorkerSets[len(cfg.WorkerSets)-1]
		row, err := distRow(n, false, true)
		if err != nil {
			return nil, err
		}
		if !row.BitwiseSame {
			rep.AllExact = false
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// bitwiseEqual compares two CP results bit for bit: lambda, factors, fits.
func bitwiseEqual(a, b *cpals.Result) bool {
	if len(a.Lambda) != len(b.Lambda) || len(a.Factors) != len(b.Factors) || len(a.Fits) != len(b.Fits) {
		return false
	}
	for i := range a.Lambda {
		if math.Float64bits(a.Lambda[i]) != math.Float64bits(b.Lambda[i]) {
			return false
		}
	}
	for i := range a.Fits {
		if math.Float64bits(a.Fits[i]) != math.Float64bits(b.Fits[i]) {
			return false
		}
	}
	for n := range a.Factors {
		fa, fb := a.Factors[n], b.Factors[n]
		if fa.Rows != fb.Rows || fa.Cols != fb.Cols {
			return false
		}
		for i := range fa.Data {
			if math.Float64bits(fa.Data[i]) != math.Float64bits(fb.Data[i]) {
				return false
			}
		}
	}
	return true
}

// RenderDistBench formats the combined report as text tables.
func RenderDistBench(r *DistBenchReport) string {
	var b strings.Builder
	b.WriteString("Distributed runtime (measured over TCP loopback)\n")
	renderDistSection(&b, "compute regime", r.Compute)
	renderDistSection(&b, "wire regime", r.Wire)
	if r.AllExact {
		b.WriteString("every distributed run bitwise-identical to its serial reference\n")
	} else {
		b.WriteString("WARNING: distributed results diverged from the serial solver\n")
	}
	return b.String()
}

func renderDistSection(b *strings.Builder, title string, r *DistReport) {
	if r == nil {
		return
	}
	fmt.Fprintf(b, "\n%s: %v, %d nnz, rank %d, %d iters", title, r.Dims, r.NNZ, r.Rank, r.Iters)
	if r.Block > 0 {
		fmt.Fprintf(b, ", block %d", r.Block)
	}
	b.WriteByte('\n')
	fmt.Fprintf(b, "%-22s %9s %10s %10s %7s %8s %8s %8s\n",
		"config", "wall ms", "shard MB", "factor MB", "frames", "fit", "exact", "speedup")
	for _, row := range r.Rows {
		name := "serial " + row.Kernel
		if !row.Serial {
			name = fmt.Sprintf("%d worker(s) %s", row.Workers, row.Kernel)
			if !row.DeltaBroadcast {
				name += " full"
			}
			if row.Chaos {
				name += " chaos"
			}
		}
		fmt.Fprintf(b, "%-22s %9.1f %10.2f %10.2f %7d %8.4f %8v %8.2f\n",
			name, row.WallMs, row.WireShardMB, row.WireFactorMB, row.WireDeltaFrames,
			row.Fit, row.BitwiseSame, row.Speedup)
	}
	if r.FactorWireReduction > 0 {
		fmt.Fprintf(b, "factor-broadcast wire: %.2fx smaller with deltas (largest worker count)\n",
			r.FactorWireReduction)
	}
}
