package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"cstf/internal/cpals"
	"cstf/internal/dist"
	"cstf/internal/tensor"
)

// Distributed-runtime benchmark: the same planted-rank CP-ALS problem
// solved by the single-process reference and by the real TCP runtime with
// 1, 2, and 4 local workers. Everything reported for the distributed runs
// is MEASURED — wall clock and bytes on actual sockets — unlike the
// simulated-cluster experiments; and every run is checked bitwise against
// the serial factors, so the table doubles as the determinism acceptance
// test at benchmark scale.

// DistBenchConfig sizes the distributed benchmark; tests shrink it.
type DistBenchConfig struct {
	Dims       []int // planted tensor shape
	NNZ        int   // nonzeros
	TrueRank   int   // planted rank
	Iters      int   // ALS iterations
	WorkerSets []int // worker counts to run
}

// DefaultDistBenchConfig returns the `cstf-bench -exp dist` sizing.
func DefaultDistBenchConfig() DistBenchConfig {
	return DistBenchConfig{
		Dims:       []int{3000, 2500, 2000},
		NNZ:        300000,
		TrueRank:   8,
		Iters:      5,
		WorkerSets: []int{1, 2, 4},
	}
}

// DistRow is one configuration's measurements.
type DistRow struct {
	Workers     int     `json:"workers"` // 0 = single-process serial reference
	WallMs      float64 `json:"wall_ms"`
	WireSentMB  float64 `json:"wire_sent_mb"`
	WireRecvMB  float64 `json:"wire_recv_mb"`
	Fit         float64 `json:"fit"`
	BitwiseSame bool    `json:"bitwise_equal_to_serial"`
	Speedup     float64 `json:"speedup_vs_serial"`
}

// DistReport is the machine-readable result of DistBench
// (results/BENCH_dist.json).
type DistReport struct {
	Dims     []int     `json:"dims"`
	NNZ      int       `json:"nnz"`
	Rank     int       `json:"rank"`
	Iters    int       `json:"iters"`
	Rows     []DistRow `json:"rows"`
	AllExact bool      `json:"all_bitwise_equal"`
}

// WriteJSON writes the report as indented JSON.
func (r *DistReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DistBench runs the distributed benchmark with the default sizing.
func DistBench(p Params) (*DistReport, error) {
	return DistBenchWith(p, DefaultDistBenchConfig())
}

// DistBenchWith generates the planted tensor, solves it serially, then
// once per worker count over real TCP loopback workers, verifying bitwise
// identity each time.
func DistBenchWith(p Params, cfg DistBenchConfig) (*DistReport, error) {
	rank := p.Rank
	if rank < 2 {
		rank = 2
	}
	x := tensor.GenLowRank(p.Seed, cfg.NNZ, cfg.TrueRank, 0.05, cfg.Dims...)
	opts := cpals.Options{Rank: rank, MaxIters: cfg.Iters, Seed: p.Seed}

	rep := &DistReport{Dims: cfg.Dims, NNZ: x.NNZ(), Rank: rank, Iters: cfg.Iters, AllExact: true}

	start := time.Now()
	serial, err := cpals.Solve(x, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: dist bench serial solve failed: %w", err)
	}
	serialMs := time.Since(start).Seconds() * 1e3
	rep.Rows = append(rep.Rows, DistRow{
		Workers: 0, WallMs: serialMs, Fit: serial.Fit(), BitwiseSame: true, Speedup: 1,
	})

	for _, n := range cfg.WorkerSets {
		lc, err := dist.StartInProcess(n)
		if err != nil {
			return nil, err
		}
		res, stats, err := dist.Solve(x, opts, lc.Config())
		lc.Close()
		if err != nil {
			return nil, fmt.Errorf("experiments: dist bench with %d workers failed: %w", n, err)
		}
		row := DistRow{
			Workers:     n,
			WallMs:      stats.WallSeconds * 1e3,
			WireSentMB:  float64(stats.BytesSent) / 1e6,
			WireRecvMB:  float64(stats.BytesRecv) / 1e6,
			Fit:         res.Fit(),
			BitwiseSame: bitwiseEqual(serial, res),
			Speedup:     serialMs / (stats.WallSeconds * 1e3),
		}
		if !row.BitwiseSame {
			rep.AllExact = false
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// bitwiseEqual compares two CP results bit for bit: lambda, factors, fits.
func bitwiseEqual(a, b *cpals.Result) bool {
	if len(a.Lambda) != len(b.Lambda) || len(a.Factors) != len(b.Factors) || len(a.Fits) != len(b.Fits) {
		return false
	}
	for i := range a.Lambda {
		if math.Float64bits(a.Lambda[i]) != math.Float64bits(b.Lambda[i]) {
			return false
		}
	}
	for i := range a.Fits {
		if math.Float64bits(a.Fits[i]) != math.Float64bits(b.Fits[i]) {
			return false
		}
	}
	for n := range a.Factors {
		fa, fb := a.Factors[n], b.Factors[n]
		if fa.Rows != fb.Rows || fa.Cols != fb.Cols {
			return false
		}
		for i := range fa.Data {
			if math.Float64bits(fa.Data[i]) != math.Float64bits(fb.Data[i]) {
				return false
			}
		}
	}
	return true
}

// RenderDistBench formats the report as a text table.
func RenderDistBench(r *DistReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Distributed runtime: measured CP-ALS, %v, %d nnz, rank %d, %d iters\n",
		r.Dims, r.NNZ, r.Rank, r.Iters)
	fmt.Fprintf(&b, "%-12s %10s %12s %12s %9s %8s %8s\n",
		"config", "wall ms", "sent MB", "recv MB", "fit", "exact", "speedup")
	for _, row := range r.Rows {
		name := "serial"
		if row.Workers > 0 {
			name = fmt.Sprintf("%d worker(s)", row.Workers)
		}
		fmt.Fprintf(&b, "%-12s %10.1f %12.2f %12.2f %9.4f %8v %8.2f\n",
			name, row.WallMs, row.WireSentMB, row.WireRecvMB, row.Fit, row.BitwiseSame, row.Speedup)
	}
	if r.AllExact {
		b.WriteString("every distributed run bitwise-identical to the serial solver\n")
	} else {
		b.WriteString("WARNING: distributed results diverged from the serial solver\n")
	}
	return b.String()
}
