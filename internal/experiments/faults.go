package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cstf/internal/chaos"
	"cstf/internal/ckpt"
	"cstf/internal/cpals"
	"cstf/internal/dist"
	"cstf/internal/la"
	"cstf/internal/tensor"
)

// Fault-tolerance benchmark for the real distributed runtime: the same
// planted CP-ALS problem is solved clean, then once per failure mode —
// worker crash, network partition with rejoin, CRC-rejected frame
// corruption, total fleet collapse with coordinator-local degradation,
// coordinator SIGKILL with checkpoint resume, and a torn checkpoint with
// retained-version fallback. Every row is MEASURED wall clock on real
// loopback sockets, and every row is checked bitwise against the serial
// reference: recovery is only recovery if the answer is the same answer.
//
// "Time to recover" is reported as the extra wall clock a faulted run paid
// relative to the unfaulted baseline of the same configuration — the
// end-to-end price of the failure, which is what an operator actually
// waits out (detection + rejoin/resume + recomputation).

// FaultsBenchConfig sizes the fault benchmark; tests shrink it.
type FaultsBenchConfig struct {
	Dims      []int   // planted tensor shape
	NNZ       int     // nonzeros
	TrueRank  int     // planted rank
	Rank      int     // decomposition rank (0 = Params.Rank)
	Noise     float64 // additive noise level
	GenSeed   uint64  // tensor generator seed
	Iters     int     // ALS iterations
	Workers   int     // worker fleet size
	KillAfter int     // iteration the coordinator "dies" at (resume rows)
	Dir       string  // scratch directory for checkpoint files ("" = temp)
}

// DefaultFaultsBenchConfig returns the results/BENCH_faults.json sizing.
func DefaultFaultsBenchConfig() FaultsBenchConfig {
	return FaultsBenchConfig{
		Dims:      []int{300, 250, 200},
		NNZ:       150000,
		TrueRank:  4,
		Rank:      8,
		Noise:     0.05,
		GenSeed:   17,
		Iters:     14,
		Workers:   2,
		KillAfter: 7,
	}
}

// FaultsRow is one failure scenario's measurements.
type FaultsRow struct {
	Scenario string `json:"scenario"`
	// WallMs is end-to-end wall clock; for resume scenarios it includes
	// both the interrupted run and the resumed run.
	WallMs float64 `json:"wall_ms"`
	// RecoverMs is WallMs minus the baseline row's WallMs (clamped at 0):
	// the measured time-to-recover paid for the injected failure.
	RecoverMs     float64 `json:"recover_ms"`
	WorkerDeaths  int     `json:"worker_deaths,omitempty"`
	Rejoins       int     `json:"rejoins,omitempty"`
	CorruptFrames int     `json:"corrupt_frames,omitempty"`
	Degraded      bool    `json:"degraded,omitempty"`
	Resumed       bool    `json:"resumed,omitempty"`
	Fit           float64 `json:"fit"`
	Bitwise       bool    `json:"bitwise"`
}

// FaultsReport is the machine-readable result (results/BENCH_faults.json).
type FaultsReport struct {
	Dims    []int       `json:"dims"`
	NNZ     int         `json:"nnz"`
	Rank    int         `json:"rank"`
	Iters   int         `json:"iters"`
	Workers int         `json:"workers"`
	Rows    []FaultsRow `json:"rows"`
	// AllExact: every faulted row still matched the serial reference bit
	// for bit.
	AllExact bool `json:"all_bitwise_equal"`
}

// WriteJSON writes the report as indented JSON.
func (r *FaultsReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// errSimKill aborts a head run at a checkpoint boundary, standing in for a
// coordinator SIGKILL that lands right after a durable checkpoint write.
var errSimKill = errors.New("experiments: simulated coordinator kill")

// loopbackRetry is the redial policy for the bench's loopback fleets.
func loopbackRetry() dist.RetryPolicy {
	return dist.RetryPolicy{
		MaxAttempts: 6,
		Base:        2 * time.Millisecond,
		Max:         50 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.5,
	}
}

// FaultsBench runs the fault benchmark with the default sizing.
func FaultsBench(p Params) (*FaultsReport, error) {
	return FaultsBenchWith(p, DefaultFaultsBenchConfig())
}

// FaultsBenchWith generates the planted tensor, solves it serially for the
// bitwise reference, then replays the failure-scenario matrix against real
// TCP loopback workers.
func FaultsBenchWith(p Params, cfg FaultsBenchConfig) (*FaultsReport, error) {
	rank := cfg.Rank
	if rank == 0 {
		rank = p.Rank
	}
	if rank < 2 {
		rank = 2
	}
	dir := cfg.Dir
	if dir == "" {
		td, err := os.MkdirTemp("", "cstf-faults-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(td)
		dir = td
	}
	x := tensor.GenLowRank(cfg.GenSeed, cfg.NNZ, cfg.TrueRank, cfg.Noise, cfg.Dims...)
	opts := cpals.Options{Rank: rank, MaxIters: cfg.Iters, Seed: p.Seed}

	rep := &FaultsReport{
		Dims: cfg.Dims, NNZ: x.NNZ(), Rank: rank,
		Iters: cfg.Iters, Workers: cfg.Workers, AllExact: true,
	}

	benchSettle()
	reference, err := cpals.Solve(x, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: faults bench serial solve failed: %w", err)
	}

	// distRun solves once over a fresh in-process fleet.
	distRun := func(mut func(*dist.Config)) (*cpals.Result, dist.Stats, error) {
		benchSettle()
		lc, err := dist.StartInProcess(cfg.Workers)
		if err != nil {
			return nil, dist.Stats{}, err
		}
		defer lc.Close()
		dc := lc.Config()
		// Loopback reconnects are instant; the default WAN-sized backoff
		// would dominate the measured recovery time.
		dc.Retry = loopbackRetry()
		if mut != nil {
			mut(&dc)
		}
		return dist.Solve(x, opts, dc)
	}

	var baselineMs float64
	addRow := func(scenario string, res *cpals.Result, st dist.Stats, wallMs float64) {
		row := FaultsRow{
			Scenario:      scenario,
			WallMs:        wallMs,
			WorkerDeaths:  st.WorkerDeaths,
			Rejoins:       st.Rejoins,
			CorruptFrames: st.CorruptFrames,
			Degraded:      st.Degraded,
			Fit:           res.Fit(),
			Bitwise:       bitwiseEqual(reference, res),
		}
		if scenario == "baseline" {
			baselineMs = wallMs
		} else if wallMs > baselineMs {
			row.RecoverMs = wallMs - baselineMs
		}
		if !row.Bitwise {
			rep.AllExact = false
		}
		rep.Rows = append(rep.Rows, row)
	}

	type faultCase struct {
		scenario string
		mut      func(*dist.Config)
	}
	cases := []faultCase{
		{"baseline", nil},
		{"worker-crash", func(dc *dist.Config) {
			dc.Plan = chaos.NewPlanFromEvents(
				chaos.Event{Kind: chaos.NodeCrash, Node: cfg.Workers / 2, Stage: 4})
		}},
		{"partition-rejoin", func(dc *dist.Config) {
			dc.Plan = chaos.NewPlanFromEvents(
				chaos.Event{Kind: chaos.NetPartition, Node: cfg.Workers - 1, Stage: 4})
		}},
		{"frame-corrupt", func(dc *dist.Config) {
			dc.Plan = chaos.NewPlanFromEvents(
				chaos.Event{Kind: chaos.FrameCorrupt, Node: 0, Stage: 3})
		}},
		{"fleet-collapse-degrade", func(dc *dist.Config) {
			var evs []chaos.Event
			for n := 0; n < cfg.Workers; n++ {
				evs = append(evs, chaos.Event{Kind: chaos.NodeCrash, Node: n, Stage: 4})
			}
			dc.Plan = chaos.NewPlanFromEvents(evs...)
			dc.DisableRejoin = true // the processes are dead; don't redial
		}},
	}
	for _, fc := range cases {
		start := time.Now()
		res, st, err := distRun(fc.mut)
		if err != nil {
			return nil, fmt.Errorf("experiments: faults bench scenario %s failed: %w", fc.scenario, err)
		}
		addRow(fc.scenario, res, st, time.Since(start).Seconds()*1e3)
	}

	for _, torn := range []bool{false, true} {
		scenario := "kill-resume"
		if torn {
			scenario = "torn-checkpoint-fallback"
		}
		res, st, wallMs, err := killResumeRun(x, opts, cfg, dir, scenario, torn)
		if err != nil {
			return nil, err
		}
		row := FaultsRow{
			Scenario:      scenario,
			WallMs:        wallMs,
			WorkerDeaths:  st.WorkerDeaths,
			Rejoins:       st.Rejoins,
			CorruptFrames: st.CorruptFrames,
			Degraded:      st.Degraded,
			Resumed:       true,
			Fit:           res.Fit(),
			Bitwise:       bitwiseEqual(reference, res),
		}
		if wallMs > baselineMs {
			row.RecoverMs = wallMs - baselineMs
		}
		if !row.Bitwise {
			rep.AllExact = false
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// killResumeRun interrupts a checkpointing distributed solve right after
// the KillAfter-th checkpoint lands (the moment a SIGKILL hurts most: state
// durable, process gone), optionally tears the live checkpoint file in
// half, then resumes over a brand-new fleet — falling back to the newest
// retained version when the live file is corrupt. The returned result is
// the resumed run's; wall clock covers both runs plus the recovery itself.
func killResumeRun(x *tensor.COO, opts cpals.Options, cfg FaultsBenchConfig, dir, scenario string, torn bool) (*cpals.Result, dist.Stats, float64, error) {
	path := filepath.Join(dir, scenario+".ckpt")
	start := time.Now()

	headOpts := opts
	headOpts.CheckpointEvery = 1
	headOpts.OnCheckpoint = checkpointHook(path, opts, x.Dims, cfg)

	lc, err := dist.StartInProcess(cfg.Workers)
	if err != nil {
		return nil, dist.Stats{}, 0, err
	}
	_, _, err = dist.Solve(x, headOpts, lc.Config())
	lc.Close()
	if !errors.Is(err, errSimKill) {
		return nil, dist.Stats{}, 0, fmt.Errorf("experiments: %s head run: want simulated kill, got %v", scenario, err)
	}

	if torn {
		if err := tearInHalf(path); err != nil {
			return nil, dist.Stats{}, 0, err
		}
	}

	cp, err := ckpt.Read(path)
	var ce *ckpt.CorruptError
	switch {
	case err == nil:
		if torn {
			return nil, dist.Stats{}, 0, fmt.Errorf("experiments: %s: torn checkpoint read cleanly", scenario)
		}
	case errors.As(err, &ce):
		// The live file is torn; recover from the newest retained version.
		vs, verr := ckpt.ListVersions(path)
		if verr != nil || len(vs) == 0 {
			return nil, dist.Stats{}, 0, fmt.Errorf("experiments: %s: no retained versions after corruption: %v", scenario, verr)
		}
		cp, err = ckpt.Read(ckpt.VersionPath(path, vs[len(vs)-1]))
		if err != nil {
			return nil, dist.Stats{}, 0, fmt.Errorf("experiments: %s: retained version unreadable: %w", scenario, err)
		}
	default:
		return nil, dist.Stats{}, 0, err
	}

	tailOpts := opts
	tailOpts.StartIter = cp.Iter
	tailOpts.InitLambda = cp.Lambda
	tailOpts.InitFits = cp.Fits
	for n, data := range cp.Factors {
		tailOpts.InitFactors = append(tailOpts.InitFactors, la.NewDenseFrom(x.Dims[n], cp.Rank, data))
	}

	lc, err = dist.StartInProcess(cfg.Workers)
	if err != nil {
		return nil, dist.Stats{}, 0, err
	}
	defer lc.Close()
	res, st, err := dist.Solve(x, tailOpts, lc.Config())
	if err != nil {
		return nil, dist.Stats{}, 0, fmt.Errorf("experiments: %s resume failed: %w", scenario, err)
	}
	return res, st, time.Since(start).Seconds() * 1e3, nil
}

// checkpointHook writes every checkpoint durably, retains the previous
// generation beside it (ckpt version files), and simulates the coordinator
// dying immediately after the KillAfter-th write.
func checkpointHook(path string, opts cpals.Options, dims []int, cfg FaultsBenchConfig) func(int, []float64, []*la.Dense, []float64) error {
	return func(iter int, lambda []float64, factors []*la.Dense, fits []float64) error {
		cp := &ckpt.File{
			Algorithm: "dist",
			Rank:      opts.Rank,
			Seed:      opts.Seed,
			Iter:      iter,
			Dims:      append([]int(nil), dims...),
			Lambda:    append([]float64(nil), lambda...),
			Fits:      append([]float64(nil), fits...),
			Workers:   cfg.Workers,
		}
		for _, f := range factors {
			cp.Factors = append(cp.Factors, append([]float64(nil), f.Data...))
		}
		if err := ckpt.Write(path, cp); err != nil {
			return err
		}
		if err := ckpt.Write(ckpt.VersionPath(path, iter), cp); err != nil {
			return err
		}
		if iter >= cfg.KillAfter {
			return errSimKill
		}
		return nil
	}
}

// tearInHalf truncates a file to half its size — the classic torn write a
// power cut leaves behind.
func tearInHalf(path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	return os.Truncate(path, fi.Size()/2)
}

// RenderFaultsBench formats the report for terminals.
func RenderFaultsBench(r *FaultsReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault tolerance (real TCP runtime, %v nnz=%d rank=%d iters=%d workers=%d)\n",
		r.Dims, r.NNZ, r.Rank, r.Iters, r.Workers)
	fmt.Fprintf(&b, "%-26s %10s %11s %7s %8s %8s %5s %8s\n",
		"scenario", "wall ms", "recover ms", "deaths", "rejoins", "corrupt", "fit", "bitwise")
	for _, row := range r.Rows {
		notes := ""
		if row.Degraded {
			notes = " (degraded)"
		}
		if row.Resumed {
			notes += " (resumed)"
		}
		fmt.Fprintf(&b, "%-26s %10.1f %11.1f %7d %8d %8d %5.3f %8v%s\n",
			row.Scenario, row.WallMs, row.RecoverMs, row.WorkerDeaths,
			row.Rejoins, row.CorruptFrames, row.Fit, row.Bitwise, notes)
	}
	fmt.Fprintf(&b, "all bitwise-identical to serial: %v\n", r.AllExact)
	return b.String()
}
