package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"cstf/internal/fleet"
	"cstf/internal/serve"
)

// Fleet benchmark: the horizontal half of the serving story. A single
// machine hosts N in-process replicas behind a cstf-router-style Router,
// and the same closed-loop load generator that measures one server is
// pointed at the router. Two levers are measured:
//
//   - Replica count (1/2/4) under a bounded query working set: consistent-
//     hash affinity shards the key space, so the fleet's AGGREGATE cache
//     grows with N while each replica's stays fixed. One replica thrashes
//     (most queries pay a full scan); four mostly hit. The aggregate-QPS
//     scaling column is the cache-capacity effect, not CPU parallelism —
//     the host may well have a single core.
//   - Exact vs approximate TopK on the replicas, with measured recall@K
//     against the full scan (the recall column; exact rows are 1.0 by
//     construction).
//
// The benchmark ends with a rolling-reload drill at the largest fleet:
// a new model version rolls replica by replica under live load, and the
// drill fails unless zero queries were dropped.

// FleetBenchConfig sizes the fleet benchmark; tests shrink it.
type FleetBenchConfig struct {
	Dims          []int
	Rank          int
	ReplicaCounts []int // fleet sizes to sweep
	Clients       int   // closed-loop clients per phase
	Requests      int   // measured requests per phase
	Warmup        int   // unmeasured cache-warming requests per phase
	WorkingSet    int   // distinct anchor rows per mode (bounded query universe)
	CacheSize     int   // per-replica LRU entries — sized so one replica thrashes
	RecallQueries int   // sampled queries for the recall@K column
	K             int
}

// DefaultFleetBenchConfig returns the `cstf-bench -exp serve` fleet sizing:
// a model whose full-mode scan is milliseconds (so cache misses are
// expensive), a working set ~3x one replica's cache (so capacity is the
// bottleneck at N=1), and cache capacity that covers the working set by
// N=4.
func DefaultFleetBenchConfig() FleetBenchConfig {
	// The ranked-key universe is ~3*WorkingSet anchors (one per queried
	// mode); Warmup must be several times that so the measured phase sees
	// steady-state repeat probability, and CacheSize*4 must cover the
	// universe while CacheSize*1 covers only ~a third of it.
	return FleetBenchConfig{
		Dims:          []int{120000, 60000, 30000},
		Rank:          16,
		ReplicaCounts: []int{1, 2, 4},
		Clients:       8,
		Requests:      8000,
		Warmup:        8000,
		WorkingSet:    800,
		CacheSize:     900,
		RecallQueries: 200,
		K:             10,
	}
}

// FleetBenchRow is one (replica count, exact|approx) phase.
type FleetBenchRow struct {
	Replicas  int     `json:"replicas"`
	Approx    bool    `json:"approx"`
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	Shed      int     `json:"shed"`
	QPS       float64 `json:"qps"`
	P50Micros float64 `json:"p50_micros"`
	P99Micros float64 `json:"p99_micros"`
	// RecallAtK is measured against the exact full scan over
	// RecallQueries sampled anchors; exact rows report 1.0.
	RecallAtK float64 `json:"recall_at_k"`
	// HitRate is the fleet-aggregate result-cache hit rate during the
	// measured phase — the mechanism behind the QPS column.
	HitRate float64 `json:"cache_hit_rate"`
}

// FleetReloadDrill is the rolling-reload-under-load result.
type FleetReloadDrill struct {
	Replicas int `json:"replicas"`
	Requests int `json:"requests"` // completed during the drill window
	Errors   int `json:"errors"`   // must be 0
	Shed     int `json:"shed"`     // must be 0
	Reloaded int `json:"reloaded"` // replicas rolled — must equal Replicas
}

// FleetReport is the fleet section of BENCH_serve.json.
type FleetReport struct {
	Dims       []int            `json:"dims"`
	Rank       int              `json:"rank"`
	K          int              `json:"k"`
	WorkingSet int              `json:"working_set"`
	CacheSize  int              `json:"cache_size_per_replica"`
	Rows       []FleetBenchRow  `json:"rows"`
	ScalingX   float64          `json:"qps_scaling_max_over_1"` // exact-row QPS at max fleet / at 1 replica
	Reload     FleetReloadDrill `json:"rolling_reload"`
}

// FleetBench runs the fleet benchmark with the default sizing.
func FleetBench(p Params) (*FleetReport, error) {
	return FleetBenchWith(p, DefaultFleetBenchConfig())
}

// FleetBenchWith boots a local fleet per (replica count, approx) phase,
// drives the closed-loop load through the router, measures recall@K
// against a single-node exact scan, and finishes with the rolling-reload
// drill. Any dropped query anywhere fails the benchmark.
func FleetBenchWith(p Params, cfg FleetBenchConfig) (*FleetReport, error) {
	dir, err := os.MkdirTemp("", "cstf-fleet-bench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.ckpt")
	if err := serve.WriteDemoCheckpoint(path, cfg.Rank, 1, cfg.Dims...); err != nil {
		return nil, err
	}
	exact, err := serve.LoadCheckpoint(path)
	if err != nil {
		return nil, err
	}

	rep := &FleetReport{
		Dims:       cfg.Dims,
		Rank:       cfg.Rank,
		K:          cfg.K,
		WorkingSet: cfg.WorkingSet,
		CacheSize:  cfg.CacheSize,
	}
	for _, approx := range []bool{false, true} {
		for phase, n := range cfg.ReplicaCounts {
			row, err := fleetPhase(p, cfg, path, exact, n, approx, uint64(phase))
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, *row)
		}
	}

	// Scaling: exact rows, largest fleet over single replica.
	var qps1, qpsN float64
	for _, r := range rep.Rows {
		if r.Approx {
			continue
		}
		if r.Replicas == cfg.ReplicaCounts[0] {
			qps1 = r.QPS
		}
		qpsN = r.QPS
	}
	if qps1 > 0 {
		rep.ScalingX = qpsN / qps1
	}

	drill, err := fleetReloadDrill(p, cfg, path)
	if err != nil {
		return nil, err
	}
	rep.Reload = *drill
	return rep, nil
}

func fleetLoadOptions(cfg FleetBenchConfig, requests int, seed uint64) serve.LoadOptions {
	return serve.LoadOptions{
		Clients:    cfg.Clients,
		Requests:   requests,
		K:          cfg.K,
		Seed:       seed,
		Predict:    0.05, // ranked queries dominate: they are what caching and approx serve
		Similar:    0.05,
		WorkingSet: cfg.WorkingSet,
	}
}

// fleetPhase measures one (replica count, approx) point: boot fleet, warm
// the caches, measure, sample recall.
func fleetPhase(p Params, cfg FleetBenchConfig, path string, exact *serve.Model, n int, approx bool, phase uint64) (*FleetBenchRow, error) {
	lf, err := fleet.StartLocal(n, func(int) (*serve.Model, error) {
		return serve.LoadCheckpoint(path)
	}, serve.Config{CacheSize: cfg.CacheSize, Approx: approx}, serve.HandlerConfig{})
	if err != nil {
		return nil, err
	}
	defer lf.Close()
	rt, err := fleet.New(fleet.Config{
		Replicas:      lf.Configs(),
		ProbeInterval: 100 * time.Millisecond,
		Timeout:       30 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	ctx := context.Background()

	// Warmup fills the LRUs at this fleet size; the same working set means
	// the measured pass sees steady-state hit rates.
	warm := serve.RunLoad(ctx, rt, fleetLoadOptions(cfg, cfg.Warmup, p.Seed+phase))
	if warm.Errors > 0 {
		return nil, fmt.Errorf("experiments: fleet warmup failed %d queries at %d replicas", warm.Errors, n)
	}
	var hits0, misses0 uint64
	for _, r := range lf.Replicas {
		st := r.Server.Stats()
		hits0 += st.CacheHits
		misses0 += st.CacheMisses
	}

	st := serve.RunLoad(ctx, rt, fleetLoadOptions(cfg, cfg.Requests, p.Seed+phase+100))
	if st.Errors > 0 {
		return nil, fmt.Errorf("experiments: %d fleet queries failed at %d replicas (approx=%v)", st.Errors, n, approx)
	}
	var hits, misses uint64
	for _, r := range lf.Replicas {
		s := r.Server.Stats()
		hits += s.CacheHits
		misses += s.CacheMisses
	}
	row := &FleetBenchRow{
		Replicas:  n,
		Approx:    approx,
		Clients:   st.Clients,
		Requests:  st.Requests,
		Errors:    st.Errors,
		Shed:      st.Shed,
		QPS:       st.QPS,
		P50Micros: float64(st.P50.Nanoseconds()) / 1e3,
		P99Micros: float64(st.P99.Nanoseconds()) / 1e3,
		RecallAtK: 1,
	}
	if total := (hits - hits0) + (misses - misses0); total > 0 {
		row.HitRate = float64(hits-hits0) / float64(total)
	}
	if approx {
		r, err := measureRecall(ctx, rt, exact, cfg, p.Seed+phase)
		if err != nil {
			return nil, err
		}
		row.RecallAtK = r
	}
	return row, nil
}

// measureRecall compares the fleet's (approximate) TopK answers with the
// exact single-node scan over sampled working-set anchors.
func measureRecall(ctx context.Context, rt *fleet.Router, exact *serve.Model, cfg FleetBenchConfig, seed uint64) (float64, error) {
	order := len(cfg.Dims)
	var sum float64
	queries := 0
	for q := 0; q < cfg.RecallQueries; q++ {
		mode := q % order
		given := serve.DefaultGiven(mode)
		universe := cfg.Dims[given]
		if cfg.WorkingSet > 0 && cfg.WorkingSet < universe {
			universe = cfg.WorkingSet
		}
		row := int((seed + uint64(q)*2654435761) % uint64(universe))
		want, err := exact.TopKGiven(mode, given, row, cfg.K)
		if err != nil {
			return 0, err
		}
		got, err := rt.TopK(ctx, mode, given, row, cfg.K)
		if err != nil {
			return 0, fmt.Errorf("experiments: recall query failed: %w", err)
		}
		inExact := make(map[int]bool, len(want))
		for _, s := range want {
			inExact[s.Index] = true
		}
		hit := 0
		for _, s := range got {
			if inExact[s.Index] {
				hit++
			}
		}
		if len(want) > 0 {
			sum += float64(hit) / float64(len(want))
			queries++
		}
	}
	if queries == 0 {
		return 0, fmt.Errorf("experiments: no recall queries completed")
	}
	return sum / float64(queries), nil
}

// fleetReloadDrill rolls a new model version across the largest fleet
// under live load and requires zero dropped queries.
func fleetReloadDrill(p Params, cfg FleetBenchConfig, path string) (*FleetReloadDrill, error) {
	n := cfg.ReplicaCounts[len(cfg.ReplicaCounts)-1]
	lf, err := fleet.StartLocal(n, func(int) (*serve.Model, error) {
		return serve.LoadCheckpoint(path)
	}, serve.Config{CacheSize: cfg.CacheSize}, serve.HandlerConfig{ReloadPath: path})
	if err != nil {
		return nil, err
	}
	defer lf.Close()
	rt, err := fleet.New(fleet.Config{
		Replicas:      lf.Configs(),
		ProbeInterval: 50 * time.Millisecond,
		Timeout:       30 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()

	// Publish the next version, then roll it in while the load runs.
	if err := serve.WriteDemoCheckpoint(path, cfg.Rank, 2, cfg.Dims...); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	var st serve.LoadStats
	wg.Add(1)
	go func() {
		defer wg.Done()
		st = serve.RunLoad(ctx, rt, fleetLoadOptions(cfg, 1<<20, p.Seed+999))
	}()
	time.Sleep(50 * time.Millisecond)
	rollErr := rt.RollingReload(context.Background())
	time.Sleep(50 * time.Millisecond)
	cancel()
	wg.Wait()
	if rollErr != nil {
		return nil, fmt.Errorf("experiments: rolling reload: %w", rollErr)
	}

	drill := &FleetReloadDrill{
		Replicas: n,
		Requests: st.Requests,
		Errors:   st.Errors,
		Shed:     st.Shed,
		Reloaded: rt.Stats().Reload.Done,
	}
	if drill.Errors > 0 || drill.Shed > 0 {
		return nil, fmt.Errorf("experiments: rolling reload dropped queries: %d errors, %d shed", drill.Errors, drill.Shed)
	}
	if drill.Reloaded != n {
		return nil, fmt.Errorf("experiments: rolling reload covered %d of %d replicas", drill.Reloaded, n)
	}
	for _, r := range lf.Replicas {
		if got := r.Server.Model().Iter; got != 2 {
			return nil, fmt.Errorf("experiments: replica %s on iter %d after roll, want 2", r.Name, got)
		}
	}
	return drill, nil
}

// RenderFleetBench formats the fleet sweep as a text table.
func RenderFleetBench(r *FleetReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet benchmark: %v rank %d, working set %d rows/mode, %d LRU entries/replica\n",
		r.Dims, r.Rank, r.WorkingSet, r.CacheSize)
	fmt.Fprintf(&b, "%9s %7s %9s %10s %10s %10s %10s %9s\n",
		"replicas", "approx", "requests", "qps", "p50(us)", "p99(us)", "recall@k", "hit-rate")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%9d %7v %9d %10.0f %10.1f %10.1f %10.3f %9.2f\n",
			row.Replicas, row.Approx, row.Requests, row.QPS,
			row.P50Micros, row.P99Micros, row.RecallAtK, row.HitRate)
	}
	fmt.Fprintf(&b, "aggregate QPS scaling (exact, %dx replicas): %.2fx\n",
		r.Rows[len(r.Rows)-1].Replicas, r.ScalingX)
	fmt.Fprintf(&b, "rolling reload drill: %d replicas rolled under %d live queries, %d errors, %d shed\n",
		r.Reload.Reloaded, r.Reload.Requests, r.Reload.Errors, r.Reload.Shed)
	return b.String()
}
