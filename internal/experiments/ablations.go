package experiments

import (
	"cstf/internal/core"
	"cstf/internal/tensor"
)

// Ablations for the design choices the paper argues for in prose:
//
//   - Section 4.1 "Caching": CSTF caches the tensor RAW rather than
//     serialized, "since it leads to better performance benefits in
//     iterative tensor algorithms ... due to the faster data accesses".
//     AblationCaching measures both storage levels.
//   - Section 4.2: QCOO computes each gram matrix once per CP-ALS
//     iteration, "eliminat[ing] the need to perform extra reduce
//     operations". AblationGramReuse disables the reuse.
//   - Section 5's communication analysis is rank-linear in its nnz*R
//     terms but the records carry constant-size coordinates too, so the
//     QCOO byte saving must shrink as R grows — and because the queue
//     carries N-1 rank-sized rows through its join while COO's
//     accumulator carries one, the saving actually reverses sign once
//     8R outweighs the per-record constants (R around 16-32 at order 3).
//     The paper evaluates only R=2; AblationRankSweep maps the limit of
//     the queue strategy.

// CachingRow reports one storage level's steady-state iteration time.
type CachingRow struct {
	Nodes          int
	RawSeconds     float64
	SerialSeconds  float64
	RawAdvantage   float64 // SerialSeconds / RawSeconds (>1: raw wins)
	RawCachedGB    float64 // cache footprint, full-scale equivalent
	SerialCachedGB float64
}

// AblationCaching compares raw vs serialized tensor caching for CSTF-COO
// on delicious3d at several cluster sizes.
func AblationCaching(p Params) ([]CachingRow, error) {
	x, _, err := p.generate("delicious3d")
	if err != nil {
		return nil, err
	}
	var rows []CachingRow
	for _, nodes := range []int{4, 32} {
		row := CachingRow{Nodes: nodes}
		for _, serialized := range []bool{false, true} {
			ctx := p.sparkCtx(nodes)
			s := core.NewCOOStateWithStorage(ctx, x, p.Rank, p.Seed, serialized)
			stats := measureIterations(ctx.Cluster, s, x.Order(), 2)
			sec := stats[1].Seconds
			cachedGB := ctx.Cluster.CachedBytes() / p.Scale / 1e9
			if serialized {
				row.SerialSeconds = sec
				row.SerialCachedGB = cachedGB
			} else {
				row.RawSeconds = sec
				row.RawCachedGB = cachedGB
			}
		}
		row.RawAdvantage = row.SerialSeconds / row.RawSeconds
		rows = append(rows, row)
	}
	return rows, nil
}

// GramReuseRow reports one configuration of the gram-reuse ablation.
type GramReuseRow struct {
	Reuse        bool
	Seconds      float64 // steady-state iteration, total
	OtherSeconds float64 // the non-MTTKRP share, where grams live
}

// AblationGramReuse runs QCOO on nell1 (large mode sizes, so gram passes
// are visible) with and without the once-per-update gram computation.
func AblationGramReuse(p Params) ([]GramReuseRow, error) {
	x, _, err := p.generate("nell1")
	if err != nil {
		return nil, err
	}
	var rows []GramReuseRow
	for _, reuse := range []bool{true, false} {
		ctx := p.sparkCtx(8)
		s := core.NewQCOOState(ctx, x, p.Rank, p.Seed)
		s.DisableGramReuse = !reuse
		stats := measureIterations(ctx.Cluster, s, x.Order(), 2)
		rows = append(rows, GramReuseRow{
			Reuse:        reuse,
			Seconds:      stats[1].Seconds,
			OtherSeconds: stats[1].TimeByPhase[core.PhaseOther],
		})
	}
	return rows, nil
}

// OrderSweepRow reports one tensor order's QCOO-vs-COO communication
// comparison: measured shuffle counts per iteration (which must equal the
// paper's N^2 vs 2N exactly) and the measured byte reduction alongside the
// paper's analytic 1/N prediction for its join-volume accounting.
type OrderSweepRow struct {
	Order          int
	COOShuffles    int
	QCOOShuffles   int
	ByteReduction  float64 // measured: 1 - QCOO/COO shuffled bytes
	PaperReduction float64 // the paper's up-to-1/N closed form (Section 5)
}

// AblationOrderSweep measures the queue strategy across tensor orders
// 3, 4, and 5 on synthetic tensors of equal nnz. Section 5 states QCOO
// reduces communication by up to 33%, 25%, and 20% for orders 3/4/5 under
// its join-volume accounting; our engines measure full shuffle-read bytes,
// where the reduction instead grows with order because COO re-shuffles the
// coordinates N-1 times per MTTKRP (see EXPERIMENTS.md).
func (p Params) orderTensor(order int) *tensor.COO {
	dims := make([]int, order)
	for i := range dims {
		dims[i] = 2000 >> i
		if dims[i] < 64 {
			dims[i] = 64
		}
	}
	return tensor.GenUniform(1234, 30000, dims...)
}

// AblationOrderSweep runs the order sweep (see orderTensor).
func AblationOrderSweep(p Params) ([]OrderSweepRow, error) {
	var rows []OrderSweepRow
	for _, order := range []int{3, 4, 5} {
		x := p.orderTensor(order)
		row := OrderSweepRow{Order: order, PaperReduction: 1 / float64(order)}
		for _, algo := range []Algo{AlgoCOO, AlgoQ} {
			stats, err := p.runAlgo(algo, Fig4Nodes, x, 2)
			if err != nil {
				return nil, err
			}
			st := stats[1]
			if algo == AlgoCOO {
				row.COOShuffles = st.Shuffles
				row.ByteReduction = st.Remote + st.Local // stash COO total
			} else {
				row.QCOOShuffles = st.Shuffles
				row.ByteReduction = 1 - (st.Remote+st.Local)/row.ByteReduction
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RankSweepRow reports the QCOO-vs-COO shuffle-byte reduction at one rank.
type RankSweepRow struct {
	Rank      int
	COOBytes  float64
	QCOOBytes float64
	Reduction float64 // 1 - QCOO/COO
}

// AblationRankSweep measures the communication reduction of the queue
// strategy as the decomposition rank grows (delicious3d, 8 nodes).
func AblationRankSweep(p Params) ([]RankSweepRow, error) {
	x, _, err := p.generate("delicious3d")
	if err != nil {
		return nil, err
	}
	var rows []RankSweepRow
	for _, rank := range []int{2, 4, 8, 16, 32} {
		pr := p
		pr.Rank = rank
		row := RankSweepRow{Rank: rank}
		for _, algo := range []Algo{AlgoCOO, AlgoQ} {
			stats, err := pr.runAlgo(algo, Fig4Nodes, x, 2)
			if err != nil {
				return nil, err
			}
			total := stats[1].Remote + stats[1].Local
			if algo == AlgoCOO {
				row.COOBytes = total
			} else {
				row.QCOOBytes = total
			}
		}
		row.Reduction = 1 - row.QCOOBytes/row.COOBytes
		rows = append(rows, row)
	}
	return rows, nil
}

// PartitionsRow reports one task-granularity configuration.
type PartitionsRow struct {
	TasksPerCore int
	Seconds      float64 // COO steady-state iteration
}

// AblationPartitions sweeps the partitions-per-core discipline on the
// skewed nell1 tensor (8 nodes): finer tasks smooth out Zipf-induced load
// imbalance at the price of per-task overhead — the Spark "2-3 tasks per
// core" guidance, measured.
func AblationPartitions(p Params) ([]PartitionsRow, error) {
	x, _, err := p.generate("nell1")
	if err != nil {
		return nil, err
	}
	const nodes = 8
	var rows []PartitionsRow
	for _, tpc := range []int{1, 2, 4, 8} {
		c := p.newCluster(nodes)
		ctx := rddContext(c, nodes*p.Profile.CoresPerNode*tpc)
		s := core.NewCOOState(ctx, x, p.Rank, p.Seed)
		stats := measureIterations(c, s, x.Order(), 2)
		rows = append(rows, PartitionsRow{TasksPerCore: tpc, Seconds: stats[1].Seconds})
	}
	return rows, nil
}
