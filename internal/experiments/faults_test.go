package experiments

import "testing"

// A shrunk faults bench must execute every scenario, observe the expected
// fault counters, and stay bitwise-identical to serial on every row.
func TestFaultsBenchShrunk(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up TCP worker fleets")
	}
	cfg := FaultsBenchConfig{
		Dims:      []int{60, 50, 40},
		NNZ:       4000,
		TrueRank:  3,
		Rank:      4,
		Noise:     0.05,
		GenSeed:   17,
		Iters:     8,
		Workers:   2,
		KillAfter: 4,
		Dir:       t.TempDir(),
	}
	rep, err := FaultsBenchWith(DefaultParams(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllExact {
		t.Fatalf("not all rows bitwise-identical: %+v", rep.Rows)
	}
	want := map[string]func(FaultsRow) error{
		"baseline":                 nil,
		"worker-crash":             nil,
		"partition-rejoin":         nil,
		"frame-corrupt":            nil,
		"fleet-collapse-degrade":   nil,
		"kill-resume":              nil,
		"torn-checkpoint-fallback": nil,
	}
	for _, row := range rep.Rows {
		if _, ok := want[row.Scenario]; !ok {
			t.Fatalf("unexpected scenario %q", row.Scenario)
		}
		delete(want, row.Scenario)
		if !row.Bitwise {
			t.Fatalf("%s: not bitwise", row.Scenario)
		}
		switch row.Scenario {
		case "worker-crash":
			if row.WorkerDeaths < 1 {
				t.Fatalf("worker-crash saw no deaths: %+v", row)
			}
		case "partition-rejoin":
			if row.Rejoins < 1 {
				t.Fatalf("partition did not rejoin: %+v", row)
			}
		case "frame-corrupt":
			// The corrupted frame travels coordinator→worker, so the CRC
			// rejection happens worker-side; the coordinator observes the
			// resulting connection reset and the worker's rejoin.
			if row.WorkerDeaths < 1 || row.Rejoins < 1 {
				t.Fatalf("corrupt frame did not reset and recover the connection: %+v", row)
			}
		case "fleet-collapse-degrade":
			if !row.Degraded {
				t.Fatalf("fleet collapse did not degrade: %+v", row)
			}
		case "kill-resume", "torn-checkpoint-fallback":
			if !row.Resumed {
				t.Fatalf("%s did not resume: %+v", row.Scenario, row)
			}
		}
	}
	if len(want) != 0 {
		t.Fatalf("scenarios missing from report: %v", want)
	}
	if s := RenderFaultsBench(rep); s == "" {
		t.Fatal("empty render")
	}
}
