package experiments

import (
	"fmt"
	"strings"
)

// Rendering of experiment results as text reports (and CSV), consumed by
// cmd/cstf-bench and EXPERIMENTS.md.

// RenderFig2 formats Figure 2 as a table per dataset.
func RenderFig2(rows []Fig2Row) string {
	var b strings.Builder
	b.WriteString("Figure 2: CP-ALS seconds/iteration (modeled, full-scale equivalent), 3rd-order tensors\n")
	cur := ""
	for _, r := range rows {
		if r.Dataset != cur {
			cur = r.Dataset
			fmt.Fprintf(&b, "\n[%s]\n", cur)
			fmt.Fprintf(&b, "%-6s %10s %10s %10s %12s %12s %10s\n",
				"nodes", "COO", "QCOO", "BIGtensor", "BIG/COO", "BIG/QCOO", "COO/QCOO")
		}
		fmt.Fprintf(&b, "%-6d %10.1f %10.1f %10.1f %11.2fx %11.2fx %9.2fx\n",
			r.Nodes, r.COO, r.QCOO, r.BIGtensor, r.SpeedupCOO, r.SpeedupQCOO, r.RatioQvsCOO)
	}
	return b.String()
}

// CSVFig2 renders Figure 2 as CSV.
func CSVFig2(rows []Fig2Row) string {
	var b strings.Builder
	b.WriteString("dataset,nodes,coo_s,qcoo_s,bigtensor_s,speedup_coo,speedup_qcoo,coo_over_qcoo\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d,%.2f,%.2f,%.2f,%.3f,%.3f,%.3f\n",
			r.Dataset, r.Nodes, r.COO, r.QCOO, r.BIGtensor, r.SpeedupCOO, r.SpeedupQCOO, r.RatioQvsCOO)
	}
	return b.String()
}

// RenderFig3 formats Figure 3.
func RenderFig3(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("Figure 3: CP-ALS seconds/iteration (modeled), 4th-order tensors\n")
	cur := ""
	for _, r := range rows {
		if r.Dataset != cur {
			cur = r.Dataset
			fmt.Fprintf(&b, "\n[%s]\n%-6s %10s %10s %10s\n", cur, "nodes", "COO", "QCOO", "COO/QCOO")
		}
		fmt.Fprintf(&b, "%-6d %10.1f %10.1f %9.2fx\n", r.Nodes, r.COO, r.QCOO, r.RatioQvsCOO)
	}
	return b.String()
}

// CSVFig3 renders Figure 3 as CSV.
func CSVFig3(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("dataset,nodes,coo_s,qcoo_s,coo_over_qcoo\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d,%.2f,%.2f,%.3f\n", r.Dataset, r.Nodes, r.COO, r.QCOO, r.RatioQvsCOO)
	}
	return b.String()
}

// RenderFig4 formats Figure 4's stacked bars and headline reductions.
func RenderFig4(res *Fig4Result, scale float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: shuffle bytes read per steady-state CP-ALS iteration, %d nodes\n", Fig4Nodes)
	fmt.Fprintf(&b, "(raw bytes at scale %.0e; full-scale equivalent in GB)\n", scale)
	render := func(title string, bars []Fig4Bar) {
		fmt.Fprintf(&b, "\n[%s]\n", title)
		for _, bar := range bars {
			fmt.Fprintf(&b, "%-12s %-9s total %12.0f B (~%6.1f GB full scale)\n",
				bar.Dataset, bar.Algo, bar.Total, bar.FullGB)
			for _, ph := range bar.Phases {
				if v := bar.ByPhase[ph]; v > 0 {
					fmt.Fprintf(&b, "    %-10s %12.0f B\n", ph, v)
				}
			}
		}
	}
	render("remote bytes read", res.Remote)
	render("local bytes read", res.Local)
	b.WriteString("\nQCOO vs COO reductions:\n")
	for _, ds := range Fig4Datasets {
		fmt.Fprintf(&b, "  %-12s remote %5.1f%%   local %5.1f%%\n",
			ds, 100*res.RemoteReduction[ds], 100*res.LocalReduction[ds])
	}
	return b.String()
}

// RenderFig5 formats Figure 5.
func RenderFig5(rows []Fig5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: per-mode MTTKRP seconds (modeled, first iteration), %d nodes\n", Fig5Nodes)
	cur := ""
	for _, r := range rows {
		if r.Dataset != cur {
			cur = r.Dataset
			fmt.Fprintf(&b, "\n[%s]\n%-10s %10s %10s %10s\n", cur, "algo", "mode 1", "mode 2", "mode 3")
		}
		fmt.Fprintf(&b, "%-10s %10.1f %10.1f %10.1f\n", r.Algo, r.Mode[0], r.Mode[1], r.Mode[2])
	}
	return b.String()
}

// RenderTable4 formats Table 4 with paper-vs-measured columns.
func RenderTable4(rows []Table4Row, nnz int, rank int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: 3rd-order mode-1 MTTKRP costs (nnz=%d, R=%d)\n", nnz, rank)
	fmt.Fprintf(&b, "%-10s %14s %14s %18s %10s %10s\n",
		"algorithm", "flops(meas)", "flops(paper)", "intermediate", "shuf(meas)", "shuf(paper)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %14.3g %14.3g %11.0f B (%s) %6d %10d\n",
			r.Algo, r.MeasuredFlops, r.PaperFlops, r.IntermediateBytes,
			r.PaperIntermediate, r.MeasuredShuffles, r.PaperShuffles)
	}
	return b.String()
}

// RenderTable5 formats Table 5.
func RenderTable5(lines []string) string {
	return "Table 5: dataset summary\n" + strings.Join(lines, "\n") + "\n"
}

// RenderCrashSweep formats the node-crash recovery sweep.
func RenderCrashSweep(rows []CrashRow) string {
	var b strings.Builder
	b.WriteString("Fault tolerance: node crash + lineage recomputation, CSTF-COO (delicious3d, 8 nodes, 2 iterations)\n")
	fmt.Fprintf(&b, "%-12s %12s %12s %12s %10s\n",
		"crash stage", "seconds", "recovery s", "recomputed", "overhead")
	for _, r := range rows {
		stage := fmt.Sprintf("%d", r.CrashStage)
		if r.CrashStage == 0 {
			stage = "none"
		}
		fmt.Fprintf(&b, "%-12s %12.1f %12.1f %12d %9.2fx\n",
			stage, r.Seconds, r.RecoverySeconds, r.Recomputed, r.Overhead)
	}
	return b.String()
}

// RenderStragglerSweep formats the straggler/speculation sweep.
func RenderStragglerSweep(rows []StragglerRow) string {
	var b strings.Builder
	b.WriteString("Fault tolerance: straggling node with and without speculative execution, CSTF-COO (delicious3d, 8 nodes)\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %10s %10s\n",
		"slowdown", "plain s", "spec s", "overhead", "spec gain")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %12.1f %12.1f %9.2fx %9.2fx\n",
			fmt.Sprintf("%.0fx", r.Factor), r.Seconds, r.SpecSeconds, r.Overhead, r.SpecGain)
	}
	return b.String()
}

// RenderCheckpointSweep formats the checkpoint-interval sweep.
func RenderCheckpointSweep(rows []CheckpointRow) string {
	var b strings.Builder
	b.WriteString("Fault tolerance: checkpoint interval overhead, CSTF-COO (delicious3d, 8 nodes, 4 iterations)\n")
	fmt.Fprintf(&b, "%-10s %12s %14s %10s\n", "interval", "seconds", "checkpoint s", "overhead")
	for _, r := range rows {
		every := fmt.Sprintf("every %d", r.Every)
		if r.Every == 0 {
			every = "never"
		}
		fmt.Fprintf(&b, "%-10s %12.1f %14.1f %9.2fx\n",
			every, r.Seconds, r.CheckpointSeconds, r.Overhead)
	}
	return b.String()
}
