package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// The tests below are the repository's reproduction contract: they assert
// the SHAPE claims of the paper's evaluation (who wins, by roughly what
// factor, where the crossovers fall) against the calibrated cost model, so
// a change to the engines or the profile that breaks a reproduced result
// fails CI. Absolute seconds are model output and are not asserted.

func testParams() Params {
	p := DefaultParams()
	p.Scale = 2e-4 // the calibration scale; modeled time is scale-compensated
	return p
}

func TestFig2ShapeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	rows, err := Fig2(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig2Datasets)*len(PaperNodes) {
		t.Fatalf("expected %d rows, got %d", len(Fig2Datasets)*len(PaperNodes), len(rows))
	}
	ratioAt := map[string]map[int]float64{}
	for _, r := range rows {
		// Headline claim (abstract): CSTF achieves 2.2x-6.9x over BIGtensor
		// for 3rd-order decompositions, at every cluster size.
		if r.SpeedupCOO < 2.2 || r.SpeedupCOO > 6.9 {
			t.Errorf("%s@%d: COO speedup %.2f outside [2.2, 6.9]", r.Dataset, r.Nodes, r.SpeedupCOO)
		}
		if r.SpeedupQCOO < 2.2 || r.SpeedupQCOO > 6.9 {
			t.Errorf("%s@%d: QCOO speedup %.2f outside [2.2, 6.9]", r.Dataset, r.Nodes, r.SpeedupQCOO)
		}
		if ratioAt[r.Dataset] == nil {
			ratioAt[r.Dataset] = map[int]float64{}
		}
		ratioAt[r.Dataset][r.Nodes] = r.RatioQvsCOO
	}
	for ds, m := range ratioAt {
		// Section 6.4: QCOO and COO are close on small clusters with QCOO
		// slightly behind (0.90-1.1x), and QCOO pulls ahead as nodes grow.
		if m[4] > 1.02 || m[4] < 0.80 {
			t.Errorf("%s: COO/QCOO at 4 nodes = %.2f, want <= ~1 (QCOO not faster on small clusters)", ds, m[4])
		}
		if m[32] < 1.10 {
			t.Errorf("%s: COO/QCOO at 32 nodes = %.2f, want >= 1.10 (QCOO wins at scale)", ds, m[32])
		}
		// Crossover must be monotone in node count.
		if !(m[4] <= m[8]+0.03 && m[8] <= m[16]+0.03 && m[16] <= m[32]+0.03) {
			t.Errorf("%s: COO/QCOO ratio not monotone: %v", ds, m)
		}
	}
}

func TestFig2PerDatasetCOOBands(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	// Section 6.4's per-dataset COO-vs-BIGtensor ranges (we assert
	// containment in the paper's reported interval for each dataset).
	bands := map[string][2]float64{
		"delicious3d": {3.0, 6.9},
		"nell1":       {2.6, 4.7},
		"synt3d":      {2.2, 5.8},
	}
	rows, err := Fig2(testParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		b := bands[r.Dataset]
		if r.SpeedupCOO < b[0] || r.SpeedupCOO > b[1] {
			t.Errorf("%s@%d: COO speedup %.2f outside paper band [%.1f, %.1f]",
				r.Dataset, r.Nodes, r.SpeedupCOO, b[0], b[1])
		}
	}
}

func TestFig3ShapeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	rows, err := Fig3(testParams())
	if err != nil {
		t.Fatal(err)
	}
	ratioAt := map[string]map[int]float64{}
	for _, r := range rows {
		// Conclusion: for higher-order tensors QCOO achieves 0.98x-1.7x
		// over COO across all cluster sizes.
		if r.RatioQvsCOO < 0.90 || r.RatioQvsCOO > 1.7 {
			t.Errorf("%s@%d: COO/QCOO %.2f outside [0.90, 1.7]", r.Dataset, r.Nodes, r.RatioQvsCOO)
		}
		if ratioAt[r.Dataset] == nil {
			ratioAt[r.Dataset] = map[int]float64{}
		}
		ratioAt[r.Dataset][r.Nodes] = r.RatioQvsCOO
	}
	for ds, m := range ratioAt {
		if m[32] <= m[4] {
			t.Errorf("%s: QCOO advantage must grow with cluster size: %v", ds, m)
		}
		if m[32] < 1.15 {
			t.Errorf("%s: QCOO at 32 nodes only %.2fx over COO", ds, m[32])
		}
	}
}

func TestFig4ShuffleReductions(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	res, err := Fig4(testParams())
	if err != nil {
		t.Fatal(err)
	}
	// Section 6.5: QCOO reduces remote shuffle reads by 35% (delicious3d)
	// and 31% (flickr), local reads by ~36%/35%. Our measured 3rd-order
	// reduction lands in the paper's neighborhood; the 4th-order reduction
	// over-delivers (see EXPERIMENTS.md), so its band is wider.
	check := func(name string, got, lo, hi float64) {
		if got < lo || got > hi {
			t.Errorf("%s reduction %.1f%% outside [%.0f%%, %.0f%%]", name, 100*got, 100*lo, 100*hi)
		}
	}
	check("delicious3d remote", res.RemoteReduction["delicious3d"], 0.25, 0.45)
	check("delicious3d local", res.LocalReduction["delicious3d"], 0.25, 0.45)
	check("flickr remote", res.RemoteReduction["flickr"], 0.30, 0.60)
	check("flickr local", res.LocalReduction["flickr"], 0.30, 0.60)

	// Per-mode stacks must exist for all three modes plus Other.
	for _, bar := range res.Remote {
		if bar.Algo == AlgoCOO && bar.Dataset == "delicious3d" {
			for _, ph := range []string{"MTTKRP-1", "MTTKRP-2", "MTTKRP-3"} {
				if bar.ByPhase[ph] <= 0 {
					t.Errorf("COO delicious3d: no remote bytes recorded for %s", ph)
				}
			}
		}
	}
}

func TestFig5ModeBehavior(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	rows, err := Fig5(testParams())
	if err != nil {
		t.Fatal(err)
	}
	byAlgo := map[string]map[Algo]Fig5Row{}
	for _, r := range rows {
		if byAlgo[r.Dataset] == nil {
			byAlgo[r.Dataset] = map[Algo]Fig5Row{}
		}
		byAlgo[r.Dataset][r.Algo] = r
	}
	for ds, m := range byAlgo {
		coo, q, big := m[AlgoCOO], m[AlgoQ], m[AlgoBig]
		// Section 6.6: QCOO's mode-1 MTTKRP exceeds COO's by ~30-35%
		// (queue initialization); we assert the 15-45% neighborhood.
		over := q.Mode[0]/coo.Mode[0] - 1
		if over < 0.15 || over > 0.45 {
			t.Errorf("%s: QCOO mode-1 overhead %.0f%% outside [15%%, 45%%]", ds, 100*over)
		}
		// CSTF delivers similar benefits on every mode: each mode's
		// speedup over BIGtensor is large and roughly uniform.
		for n := 0; n < 3; n++ {
			sp := big.Mode[n] / coo.Mode[n]
			if sp < 3.0 || sp > 9.5 {
				t.Errorf("%s: mode-%d COO speedup %.1fx outside [3.0, 9.5]", ds, n+1, sp)
			}
		}
		// Mode times must be roughly uniform for CSTF (it partitions
		// nonzeros, not fibers): max/min within 1.5x.
		minT, maxT := coo.Mode[0], coo.Mode[0]
		for _, v := range coo.Mode {
			minT = math.Min(minT, v)
			maxT = math.Max(maxT, v)
		}
		if maxT/minT > 1.5 {
			t.Errorf("%s: COO mode times unbalanced: %v", ds, coo.Mode)
		}
	}
}

func TestTable4Counts(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	rows, err := Table4(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.MeasuredShuffles != r.PaperShuffles {
			t.Errorf("%s: measured %d shuffles, paper says %d", r.Algo, r.MeasuredShuffles, r.PaperShuffles)
		}
		// Measured flops within 45% of the closed form (the closed forms
		// ignore reduce-merge cardinality and per-job bookkeeping).
		ratio := r.MeasuredFlops / r.PaperFlops
		if ratio < 0.55 || ratio > 1.45 {
			t.Errorf("%s: measured flops %.3g vs paper %.3g (ratio %.2f)",
				r.Algo, r.MeasuredFlops, r.PaperFlops, ratio)
		}
	}
	// Ordering of the cost model must match the paper: BIGtensor does the
	// most flops and shuffles, QCOO the fewest shuffles.
	if !(rows[0].MeasuredFlops > rows[1].MeasuredFlops) {
		t.Error("BIGtensor must charge more flops than COO")
	}
	if !(rows[2].MeasuredShuffles < rows[1].MeasuredShuffles) {
		t.Error("QCOO must shuffle less often than COO")
	}
}

func TestTable5Render(t *testing.T) {
	lines := Table5(testParams())
	if len(lines) != 6 { // header + 5 datasets
		t.Fatalf("expected 6 lines, got %d", len(lines))
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.Rank != 2 {
		t.Fatalf("paper fixes rank 2, got %d", p.Rank)
	}
	if p.Scale <= 0 || p.Scale > 1 {
		t.Fatalf("bad default scale %v", p.Scale)
	}
	if len(PaperNodes) != 4 || PaperNodes[0] != 4 || PaperNodes[3] != 32 {
		t.Fatalf("node sweep %v", PaperNodes)
	}
}

func TestRunAllJSONRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	p := testParams()
	p.Scale = 5e-5 // keep this one fast; shapes are asserted elsewhere
	rep, err := RunAll(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if len(back.Fig2) != len(rep.Fig2) || len(back.Table4) != 3 || back.Fig4 == nil {
		t.Fatalf("report incomplete after round trip: %+v", back)
	}
}
