package experiments

import (
	"strings"
	"testing"
)

// Rendering is part of the deliverable (cstf-bench output and
// EXPERIMENTS.md are built from it); pin the shape of each renderer.

func TestRenderFig2(t *testing.T) {
	rows := []Fig2Row{
		{Dataset: "delicious3d", Nodes: 4, COO: 400, QCOO: 420, BIGtensor: 1600,
			SpeedupCOO: 4, SpeedupQCOO: 3.8, RatioQvsCOO: 0.95},
		{Dataset: "nell1", Nodes: 8, COO: 250, QCOO: 240, BIGtensor: 1100,
			SpeedupCOO: 4.4, SpeedupQCOO: 4.6, RatioQvsCOO: 1.04},
	}
	out := RenderFig2(rows)
	for _, want := range []string{"[delicious3d]", "[nell1]", "4.40x", "0.95x", "1600.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig2 render missing %q:\n%s", want, out)
		}
	}
	csv := CSVFig2(rows)
	if !strings.HasPrefix(csv, "dataset,nodes,") || !strings.Contains(csv, "delicious3d,4,400.00") {
		t.Errorf("fig2 csv malformed:\n%s", csv)
	}
	if got := strings.Count(csv, "\n"); got != 3 { // header + 2 rows
		t.Errorf("fig2 csv has %d lines", got)
	}
}

func TestRenderFig3AndCSV(t *testing.T) {
	rows := []Fig3Row{{Dataset: "flickr", Nodes: 32, COO: 250, QCOO: 170, RatioQvsCOO: 1.47}}
	if out := RenderFig3(rows); !strings.Contains(out, "[flickr]") || !strings.Contains(out, "1.47x") {
		t.Errorf("fig3 render:\n%s", out)
	}
	if csv := CSVFig3(rows); !strings.Contains(csv, "flickr,32,250.00,170.00,1.470") {
		t.Errorf("fig3 csv:\n%s", csv)
	}
}

func TestRenderFig4(t *testing.T) {
	res := &Fig4Result{
		Remote: []Fig4Bar{{
			Dataset: "delicious3d", Algo: AlgoCOO, Total: 2e6, FullGB: 2,
			ByPhase: map[string]float64{"MTTKRP-1": 1e6, "MTTKRP-2": 1e6},
			Phases:  []string{"MTTKRP-1", "MTTKRP-2"},
		}},
		Local:           []Fig4Bar{},
		RemoteReduction: map[string]float64{"delicious3d": 0.34},
		LocalReduction:  map[string]float64{"delicious3d": 0.33},
	}
	out := RenderFig4(res, 1e-3)
	for _, want := range []string{"MTTKRP-1", "34.0%", "remote bytes read"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig4 render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderFig5AndTable4(t *testing.T) {
	f5 := RenderFig5([]Fig5Row{{Dataset: "nell1", Algo: AlgoQ, Mode: [3]float64{180, 120, 140}}})
	if !strings.Contains(f5, "QCOO") || !strings.Contains(f5, "180.0") {
		t.Errorf("fig5 render:\n%s", f5)
	}
	t4 := RenderTable4([]Table4Row{{
		Algo: AlgoCOO, MeasuredFlops: 8e5, PaperFlops: 8e5,
		IntermediateBytes: 2e6, PaperIntermediate: "nnz x R",
		MeasuredShuffles: 3, PaperShuffles: 3,
	}}, 140000, 2)
	if !strings.Contains(t4, "nnz x R") || !strings.Contains(t4, "COO") {
		t.Errorf("table4 render:\n%s", t4)
	}
}

func TestRenderAblations(t *testing.T) {
	c := RenderAblationCaching([]CachingRow{{Nodes: 4, RawSeconds: 100, SerialSeconds: 104, RawAdvantage: 1.04, RawCachedGB: 16, SerialCachedGB: 5}})
	if !strings.Contains(c, "1.04x") || !strings.Contains(c, "16.0 GB") {
		t.Errorf("caching render:\n%s", c)
	}
	g := RenderAblationGramReuse([]GramReuseRow{{Reuse: true, Seconds: 250, OtherSeconds: 3}})
	if !strings.Contains(g, "on") {
		t.Errorf("gram render:\n%s", g)
	}
	r := RenderAblationRankSweep([]RankSweepRow{{Rank: 32, COOBytes: 1, QCOOBytes: 2, Reduction: -1}})
	if !strings.Contains(r, "-100.0%") {
		t.Errorf("rank render:\n%s", r)
	}
	o := RenderAblationOrderSweep([]OrderSweepRow{{Order: 5, COOShuffles: 25, QCOOShuffles: 10, ByteReduction: 0.4, PaperReduction: 0.2}})
	if !strings.Contains(o, "25") || !strings.Contains(o, "20.0%") {
		t.Errorf("order render:\n%s", o)
	}
	re := RenderResilience([]ResilienceRow{{FailureRate: 0.05, Seconds: 120, Failures: 42, Overhead: 1.1}})
	if !strings.Contains(re, "42") || !strings.Contains(re, "1.10x") {
		t.Errorf("resilience render:\n%s", re)
	}
	pt := RenderAblationPartitions([]PartitionsRow{{TasksPerCore: 2, Seconds: 222}})
	if !strings.Contains(pt, "222.0") {
		t.Errorf("partitions render:\n%s", pt)
	}
}
