package experiments

import (
	"strings"
	"testing"
)

// A shrunken ServeBench must complete with zero failed queries, at least
// one hot reload mid-sweep, and sane latency ordering — the same invariants
// `cstf-bench -exp serve` enforces at full size.
func TestServeBenchSmall(t *testing.T) {
	p := DefaultParams()
	cfg := ServeBenchConfig{
		Dims:             []int{300, 200, 100},
		NNZ:              3000,
		TrainIters:       2,
		Clients:          []int{1, 4},
		RequestsPerPhase: 200,
		HotRows:          0.3,
	}
	rep, err := ServeBenchWith(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(cfg.Clients) {
		t.Fatalf("got %d rows, want %d", len(rep.Rows), len(cfg.Clients))
	}
	for _, row := range rep.Rows {
		if row.Errors != 0 {
			t.Fatalf("queries failed at %d clients: %+v", row.Clients, row)
		}
		if row.Requests == 0 || row.QPS <= 0 {
			t.Fatalf("no throughput at %d clients: %+v", row.Clients, row)
		}
		if row.P99Micros < row.P50Micros {
			t.Fatalf("percentiles inverted: %+v", row)
		}
	}
	if rep.Reloads == 0 {
		t.Fatal("no hot reload observed")
	}
	if rep.ReloadErrs != 0 {
		t.Fatalf("reload errors: %+v", rep)
	}
	out := RenderServeBench(rep)
	if !strings.Contains(out, "clients") || !strings.Contains(out, "hot reloads") {
		t.Fatalf("render missing headers:\n%s", out)
	}
	var sb strings.Builder
	if err := rep.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "\"p99_micros\"") {
		t.Fatalf("JSON missing latency fields:\n%s", sb.String())
	}
}
