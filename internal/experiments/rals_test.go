package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRALSBenchSmall(t *testing.T) {
	p := DefaultParams()
	rep, err := RALSBenchWith(p, RALSBenchConfig{
		Dims:        []int{60, 50, 40},
		NNZ:         5000,
		TrueRank:    3,
		Rank:        4,
		Noise:       0.02,
		GenSeed:     p.Seed,
		Iters:       8,
		Fractions:   []float64{0.3, 0.6},
		Resample:    2,
		Polish:      2,
		DistWorkers: 2,
		// Toy tensors carry no meaningful wall-clock signal; keep the fit
		// bar, drop the time bar so the bitwise checks always run.
		MinFitRatio:  0.8,
		MaxTimeRatio: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("want 3 rows (exact + 2 fractions), got %d: %+v", len(rep.Rows), rep.Rows)
	}
	if !rep.Rows[0].Exact || rep.Rows[0].FitVsExact != 1 || rep.Rows[0].TimeVsExact != 1 {
		t.Fatalf("first row is not the exact reference: %+v", rep.Rows[0])
	}
	for _, row := range rep.Rows[1:] {
		if row.Exact || row.SampleFraction <= 0 || row.WallMs <= 0 {
			t.Fatalf("malformed sampled row: %+v", row)
		}
	}
	if rep.AcceptedFraction == 0 {
		t.Fatalf("no sampled row met the loosened bar: %+v", rep.Rows)
	}
	if !rep.BitwiseRepeat {
		t.Fatal("same-seed rerun was not bitwise identical")
	}
	if !rep.BitwiseDist || rep.DistWorkers != 2 {
		t.Fatalf("distributed sampled run diverged: dist=%v workers=%d", rep.BitwiseDist, rep.DistWorkers)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	js := buf.String()
	for _, key := range []string{`"fit_vs_exact"`, `"time_vs_exact"`, `"accepted_fraction"`, `"bitwise_repeat"`, `"bitwise_dist"`} {
		if !strings.Contains(js, key) {
			t.Fatalf("JSON missing %s:\n%s", key, js)
		}
	}
	var back RALSReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if RenderRALSBench(rep) == "" {
		t.Fatal("empty render")
	}
}
