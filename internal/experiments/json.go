package experiments

import (
	"encoding/json"
	"io"
)

// Report is the machine-readable form of a full evaluation run, for
// downstream plotting or regression tracking.
type Report struct {
	Scale  float64     `json:"scale"`
	Rank   int         `json:"rank"`
	Seed   uint64      `json:"seed"`
	Fig2   []Fig2Row   `json:"fig2,omitempty"`
	Fig3   []Fig3Row   `json:"fig3,omitempty"`
	Fig4   *Fig4JSON   `json:"fig4,omitempty"`
	Fig5   []Fig5Row   `json:"fig5,omitempty"`
	Table4 []Table4Row `json:"table4,omitempty"`
}

// Fig4JSON is the JSON-friendly form of Fig4Result.
type Fig4JSON struct {
	Remote          []Fig4Bar          `json:"remote"`
	Local           []Fig4Bar          `json:"local"`
	RemoteReduction map[string]float64 `json:"remote_reduction"`
	LocalReduction  map[string]float64 `json:"local_reduction"`
}

// RunAll executes every headline experiment and assembles a Report.
func RunAll(p Params) (*Report, error) {
	rep := &Report{Scale: p.Scale, Rank: p.Rank, Seed: p.Seed}
	var err error
	if rep.Fig2, err = Fig2(p); err != nil {
		return nil, err
	}
	if rep.Fig3, err = Fig3(p); err != nil {
		return nil, err
	}
	f4, err := Fig4(p)
	if err != nil {
		return nil, err
	}
	rep.Fig4 = &Fig4JSON{
		Remote:          f4.Remote,
		Local:           f4.Local,
		RemoteReduction: f4.RemoteReduction,
		LocalReduction:  f4.LocalReduction,
	}
	if rep.Fig5, err = Fig5(p); err != nil {
		return nil, err
	}
	if rep.Table4, err = Table4(p); err != nil {
		return nil, err
	}
	return rep, nil
}

// WriteJSON marshals the report with indentation.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
