package experiments

import "cstf/internal/core"

// The paper motivates Spark/Hadoop precisely because they are
// fault-tolerant frameworks ("implementations ... on fault-tolerant
// frameworks such as Hadoop and Spark are useful as they can execute in
// data-center settings", Section 1). The resilience sweep quantifies what
// that tolerance costs under task failures: failed tasks are re-executed
// from their cached/shuffled inputs rather than aborting the run.

// ResilienceRow reports one failure rate's steady-state iteration time.
type ResilienceRow struct {
	FailureRate float64
	Seconds     float64
	Failures    int     // injected task failures during the measured iteration
	Overhead    float64 // Seconds / baseline Seconds
}

// ResilienceSweep runs CSTF-COO on delicious3d at 8 nodes under increasing
// injected task-failure rates.
func ResilienceSweep(p Params) ([]ResilienceRow, error) {
	x, _, err := p.generate("delicious3d")
	if err != nil {
		return nil, err
	}
	rates := []float64{0, 0.01, 0.03, 0.05}
	var rows []ResilienceRow
	var baseline float64
	for _, rate := range rates {
		ctx := p.sparkCtx(8)
		ctx.Cluster.InjectTaskFailures(rate, 1000+uint64(rate*1e4))
		s := core.NewCOOState(ctx, x, p.Rank, p.Seed)
		before := ctx.Cluster.Metrics()
		for n := 0; n < x.Order(); n++ {
			s.Step(n)
		}
		diff := ctx.Cluster.Metrics().Sub(before)
		row := ResilienceRow{
			FailureRate: rate,
			Seconds:     diff.TotalSimTime(),
			Failures:    diff.TaskFailures,
		}
		if rate == 0 {
			baseline = row.Seconds
		}
		row.Overhead = row.Seconds / baseline
		rows = append(rows, row)
	}
	return rows, nil
}
