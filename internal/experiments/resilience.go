package experiments

import (
	"fmt"

	"cstf/internal/chaos"
	"cstf/internal/cluster"
	"cstf/internal/core"
	"cstf/internal/cpals"
	"cstf/internal/la"
)

// The paper motivates Spark/Hadoop precisely because they are
// fault-tolerant frameworks ("implementations ... on fault-tolerant
// frameworks such as Hadoop and Spark are useful as they can execute in
// data-center settings", Section 1). The sweeps here quantify what that
// tolerance costs: task-level retries under injected failure rates, lineage
// recomputation after a node crash, stragglers with and without speculative
// execution, and the overhead/benefit trade-off of checkpointing.

// ResilienceRow reports one failure rate's steady-state iteration time.
type ResilienceRow struct {
	FailureRate float64
	Seconds     float64
	Failures    int     // injected task failures during the measured iteration
	Overhead    float64 // Seconds / baseline Seconds
}

// ResilienceSweep runs CSTF-COO on delicious3d at 8 nodes under increasing
// injected task-failure rates. The first row is the rate-0 baseline; if it
// is missing or measures zero time the sweep is invalid and an error is
// returned rather than rows with meaningless overhead ratios.
func ResilienceSweep(p Params) ([]ResilienceRow, error) {
	x, _, err := p.generate("delicious3d")
	if err != nil {
		return nil, err
	}
	rates := []float64{0, 0.01, 0.03, 0.05}
	var rows []ResilienceRow
	for _, rate := range rates {
		ctx := p.sparkCtx(8)
		if err := ctx.Cluster.InjectTaskFailures(rate, 1000+uint64(rate*1e4)); err != nil {
			return nil, err
		}
		s := core.NewCOOState(ctx, x, p.Rank, p.Seed)
		before := ctx.Cluster.Metrics()
		for n := 0; n < x.Order(); n++ {
			s.Step(n)
		}
		diff := ctx.Cluster.Metrics().Sub(before)
		rows = append(rows, ResilienceRow{
			FailureRate: rate,
			Seconds:     diff.TotalSimTime(),
			Failures:    diff.TaskFailures,
		})
	}
	if len(rows) == 0 || rows[0].FailureRate != 0 || rows[0].Seconds <= 0 {
		return nil, fmt.Errorf("experiments: resilience sweep has no usable rate-0 baseline")
	}
	baseline := rows[0].Seconds
	for i := range rows {
		rows[i].Overhead = rows[i].Seconds / baseline
	}
	return rows, nil
}

// CrashRow reports one node-crash timing's recovery cost.
type CrashRow struct {
	CrashStage      uint64  // stage the crash lands at (0 = fault-free baseline)
	Seconds         float64 // modeled time of the measured iterations
	RecoverySeconds float64 // of which: crash detection + lineage recomputation
	Recomputed      int     // partitions rebuilt from lineage
	Overhead        float64 // Seconds / baseline Seconds
}

// CrashSweep runs CSTF-COO on delicious3d at 8 nodes for two CP-ALS
// iterations, injecting a single node crash at increasing points of the
// stage timeline. Recovery is Spark's: lost cached partitions are recomputed
// from lineage at their next read, charged to the Recovery phase.
func CrashSweep(p Params) ([]CrashRow, error) {
	x, _, err := p.generate("delicious3d")
	if err != nil {
		return nil, err
	}
	stages := []uint64{0, 2, 8, 16, 32}
	var rows []CrashRow
	for _, at := range stages {
		ctx := p.sparkCtx(8)
		ctx.EnableRecovery()
		if at > 0 {
			ctx.Cluster.SetFaultInjector(chaos.NewPlanFromEvents(
				chaos.Event{Kind: chaos.NodeCrash, Stage: at, Node: 1}))
		}
		s := core.NewCOOState(ctx, x, p.Rank, p.Seed)
		before := ctx.Cluster.Metrics()
		for it := 0; it < 2; it++ {
			for n := 0; n < x.Order(); n++ {
				s.Step(n)
			}
		}
		diff := ctx.Cluster.Metrics().Sub(before)
		rows = append(rows, CrashRow{
			CrashStage:      at,
			Seconds:         diff.TotalSimTime(),
			RecoverySeconds: diff.SimTime[cluster.PhaseRecovery],
			Recomputed:      diff.RecomputedPartitions,
		})
	}
	if len(rows) == 0 || rows[0].CrashStage != 0 || rows[0].Seconds <= 0 {
		return nil, fmt.Errorf("experiments: crash sweep has no usable fault-free baseline")
	}
	baseline := rows[0].Seconds
	for i := range rows {
		rows[i].Overhead = rows[i].Seconds / baseline
	}
	return rows, nil
}

// StragglerRow reports one straggler severity, with and without speculation.
type StragglerRow struct {
	Factor      float64 // compute slowdown of the straggling node (1 = none)
	Seconds     float64 // without speculative execution
	SpecSeconds float64 // with speculative execution (threshold 2)
	Overhead    float64 // Seconds / baseline
	SpecGain    float64 // Seconds / SpecSeconds (>1 means speculation helped)
}

// StragglerSweep runs one CSTF-COO iteration on delicious3d at 8 nodes with
// node 2 slowed by increasing factors, comparing plain execution against
// speculative re-execution.
func StragglerSweep(p Params) ([]StragglerRow, error) {
	x, _, err := p.generate("delicious3d")
	if err != nil {
		return nil, err
	}
	run := func(factor float64, speculate bool) float64 {
		ctx := p.sparkCtx(8)
		if factor > 1 {
			ctx.Cluster.SetFaultInjector(chaos.NewPlanFromEvents(
				chaos.Event{Kind: chaos.Straggler, Stage: 1, Node: 2, Factor: factor, Duration: 1 << 20}))
		}
		if speculate {
			ctx.Cluster.EnableSpeculation(2)
		}
		s := core.NewCOOState(ctx, x, p.Rank, p.Seed)
		before := ctx.Cluster.Metrics()
		for n := 0; n < x.Order(); n++ {
			s.Step(n)
		}
		return ctx.Cluster.Metrics().Sub(before).TotalSimTime()
	}
	factors := []float64{1, 2, 4, 8}
	var rows []StragglerRow
	for _, f := range factors {
		rows = append(rows, StragglerRow{
			Factor:      f,
			Seconds:     run(f, false),
			SpecSeconds: run(f, true),
		})
	}
	if len(rows) == 0 || rows[0].Factor != 1 || rows[0].Seconds <= 0 {
		return nil, fmt.Errorf("experiments: straggler sweep has no usable baseline")
	}
	baseline := rows[0].Seconds
	for i := range rows {
		rows[i].Overhead = rows[i].Seconds / baseline
		if rows[i].SpecSeconds > 0 {
			rows[i].SpecGain = rows[i].Seconds / rows[i].SpecSeconds
		}
	}
	return rows, nil
}

// CheckpointRow reports one checkpoint interval's overhead.
type CheckpointRow struct {
	Every             int     // checkpoint interval in iterations (0 = never)
	Seconds           float64 // modeled time of the measured run
	CheckpointSeconds float64 // of which: replicated checkpoint writes
	Overhead          float64 // Seconds / baseline Seconds
}

// CheckpointSweep runs four CSTF-COO iterations on delicious3d at 8 nodes
// under increasing checkpoint frequency, charging each checkpoint as a
// replicated HDFS write of the full factor set.
func CheckpointSweep(p Params) ([]CheckpointRow, error) {
	x, _, err := p.generate("delicious3d")
	if err != nil {
		return nil, err
	}
	intervals := []int{0, 4, 2, 1}
	var rows []CheckpointRow
	for _, every := range intervals {
		ctx := p.sparkCtx(8)
		opts := cpals.Options{
			Rank: p.Rank, MaxIters: 4, Seed: p.Seed,
			CheckpointEvery: every,
		}
		if every > 0 {
			// The hook only exists to trigger the modeled write; the sweep
			// discards the snapshot itself.
			opts.OnCheckpoint = func(int, []float64, []*la.Dense, []float64) error { return nil }
		}
		if _, err := core.SolveCOO(ctx, x, opts); err != nil {
			return nil, err
		}
		m := ctx.Cluster.Metrics()
		rows = append(rows, CheckpointRow{
			Every:             every,
			Seconds:           m.TotalSimTime(),
			CheckpointSeconds: m.SimTime[cluster.PhaseCheckpoint],
		})
	}
	if len(rows) == 0 || rows[0].Every != 0 || rows[0].Seconds <= 0 {
		return nil, fmt.Errorf("experiments: checkpoint sweep has no usable baseline")
	}
	baseline := rows[0].Seconds
	for i := range rows {
		rows[i].Overhead = rows[i].Seconds / baseline
	}
	return rows, nil
}
