package experiments

import (
	"strings"
	"testing"
)

// A shrunken RecsysBench must carry every invariant the full-size run
// enforces: both models beat popularity, the ncp repeat is bitwise, every
// window publishes and hot-reloads on every replica, and the fleet's
// sharded TopK-with-exclude matches single-node. The config mirrors the
// rank package's planted-structure test, just with the streaming carve on
// top.
func TestRecsysBenchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a serving fleet")
	}
	p := DefaultParams()
	cfg := RecsysBenchConfig{
		Users:       120,
		Items:       80,
		Contexts:    4,
		Groups:      3,
		NNZ:         6000,
		Noise:       0.02,
		GenSeed:     13,
		TrainIters:  15,
		K:           10,
		StreamPct:   10,
		Windows:     3,
		Replicas:    2,
		FleetProbes: 3,
	}
	rep, err := RecsysBenchWith(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BitwiseRepeat {
		t.Fatal("ncp repeat not bitwise")
	}
	if rep.NCP.HR <= rep.Popularity.HR || rep.CPALS.HR <= rep.Popularity.HR {
		t.Fatalf("models did not beat popularity: ncp %.3f, cpals %.3f, pop %.3f",
			rep.NCP.HR, rep.CPALS.HR, rep.Popularity.HR)
	}
	if rep.TrainNNZ+rep.StreamNNZ+rep.HeldNNZ != rep.NNZ {
		t.Fatalf("carve %d+%d+%d != %d nnz", rep.TrainNNZ, rep.StreamNNZ, rep.HeldNNZ, rep.NNZ)
	}
	if len(rep.Rows) != cfg.Windows {
		t.Fatalf("got %d window rows, want %d", len(rep.Rows), cfg.Windows)
	}
	events := 0
	for _, row := range rep.Rows {
		if !row.FleetMatch {
			t.Fatalf("fleet TopK diverged: %+v", row)
		}
		if row.Version == 0 || row.LagMs < 0 {
			t.Fatalf("bad window row: %+v", row)
		}
		events += row.Events
	}
	if events != rep.StreamNNZ {
		t.Fatalf("windows streamed %d events, want %d", events, rep.StreamNNZ)
	}
	if rep.Reloads < uint64(cfg.Replicas*cfg.Windows) {
		t.Fatalf("%d reloads for %d replicas x %d windows", rep.Reloads, cfg.Replicas, cfg.Windows)
	}
	if rep.ShardedQueries == 0 {
		t.Fatal("no sharded queries recorded")
	}
	out := RenderRecsysBench(rep)
	for _, want := range []string{"popularity", "ncp", "cp-als", "fleet", "bitwise repeat true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	var sb strings.Builder
	if err := rep.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"\"bitwise_repeat\": true", "\"lag_ms\"", "\"ncp_after_stream\"", "\"fleet_topk_match\": true"} {
		if !strings.Contains(sb.String(), field) {
			t.Fatalf("JSON missing %s:\n%s", field, sb.String())
		}
	}
}
