// Package experiments regenerates every result table and figure of the
// paper's evaluation (Section 6): Figure 2 (3rd-order CP-ALS runtimes vs
// cluster size), Figure 3 (4th-order runtimes), Figure 4 (remote/local
// shuffle bytes per MTTKRP mode), Figure 5 (per-mode MTTKRP runtimes), and
// Tables 4-5. All runners execute the real algorithms on scaled synthetic
// datasets (internal/workload) over the simulated cluster, with
// SetWorkScale producing full-scale-equivalent modeled runtimes.
package experiments

import (
	"cstf/internal/bigtensor"
	"cstf/internal/cluster"
	"cstf/internal/core"
	"cstf/internal/mapreduce"
	"cstf/internal/rdd"
	"cstf/internal/tensor"
	"cstf/internal/workload"
)

// Params configures an experiment run. The defaults reproduce the paper's
// setup: rank 2, Comet-profile nodes, datasets scaled to 1/1000.
type Params struct {
	Scale   float64 // dataset scale in (0, 1]
	Rank    int
	Seed    uint64
	Profile cluster.Profile
}

// DefaultParams returns the paper-faithful configuration.
func DefaultParams() Params {
	return Params{Scale: 1e-3, Rank: 2, Seed: 42, Profile: cluster.CometProfile()}
}

// PaperNodes is the cluster-size sweep of Figures 2 and 3.
var PaperNodes = []int{4, 8, 16, 32}

// newCluster builds a simulated cluster whose modeled time compensates for
// the dataset scale.
func (p Params) newCluster(nodes int) *cluster.Cluster {
	c := cluster.New(nodes, p.Profile)
	c.SetWorkScale(1 / p.Scale)
	return c
}

// sparkCtx builds an rdd context with the experiment partitioning
// discipline (one partition per core, the Spark default for these sweeps).
func (p Params) sparkCtx(nodes int) *rdd.Context {
	return rdd.NewContext(p.newCluster(nodes), nodes*p.Profile.CoresPerNode)
}

// rddContext builds a context on an existing cluster with an explicit
// partition count (the task-granularity ablation varies it).
func rddContext(c *cluster.Cluster, parts int) *rdd.Context {
	return rdd.NewContext(c, parts)
}

// hadoopEnv builds a MapReduce environment with one reducer per core.
func (p Params) hadoopEnv(nodes int) *mapreduce.Env {
	return mapreduce.NewEnv(p.newCluster(nodes), nodes*p.Profile.CoresPerNode)
}

// IterStats summarizes one measured CP-ALS iteration.
type IterStats struct {
	Seconds     float64            // modeled seconds (full-scale equivalent)
	Remote      float64            // remote shuffle bytes read (raw, scaled run)
	Local       float64            // local shuffle bytes read (raw, scaled run)
	Shuffles    int                // shuffle operations
	Flops       float64            // floating-point operations charged
	TimeByPhase map[string]float64 // modeled seconds per phase
	RemByPhase  map[string]float64 // remote bytes per phase
	LocByPhase  map[string]float64 // local bytes per phase
}

func statsFrom(d *cluster.Metrics) IterStats {
	return IterStats{
		Seconds:     d.TotalSimTime(),
		Remote:      d.TotalRemoteBytes(),
		Local:       d.TotalLocalBytes(),
		Shuffles:    d.TotalShuffles(),
		Flops:       d.TotalFlops(),
		TimeByPhase: d.SimTime,
		RemByPhase:  d.RemoteBytes,
		LocByPhase:  d.LocalBytes,
	}
}

// stepper abstracts the three solvers' per-mode update loop.
type stepper interface{ Step(n int) }

// measureIterations runs `iters` full CP-ALS iterations and returns the
// per-iteration metric deltas. Iteration 0 includes any one-time setup
// already charged on the cluster (tensor load, queue initialization);
// iteration 1+ is steady state.
func measureIterations(c *cluster.Cluster, s stepper, order, iters int) []IterStats {
	out := make([]IterStats, 0, iters)
	before := c.Metrics()
	for it := 0; it < iters; it++ {
		for n := 0; n < order; n++ {
			s.Step(n)
		}
		after := c.Metrics()
		out = append(out, statsFrom(after.Sub(before)))
		before = after
	}
	return out
}

// Algo identifies one of the three evaluated systems.
type Algo string

// The three systems of the paper's evaluation.
const (
	AlgoCOO Algo = "COO"
	AlgoQ   Algo = "QCOO"
	AlgoBig Algo = "BIGtensor"
)

// runAlgo constructs the solver (charging its setup to the cluster) and
// returns per-iteration stats. The returned slice includes the first
// (setup-bearing) iteration followed by steady-state iterations.
func (p Params) runAlgo(algo Algo, nodes int, x *tensor.COO, iters int) ([]IterStats, error) {
	switch algo {
	case AlgoCOO:
		ctx := p.sparkCtx(nodes)
		s := core.NewCOOState(ctx, x, p.Rank, p.Seed)
		return measureIterations(ctx.Cluster, s, x.Order(), iters), nil
	case AlgoQ:
		ctx := p.sparkCtx(nodes)
		s := core.NewQCOOState(ctx, x, p.Rank, p.Seed)
		return measureIterations(ctx.Cluster, s, x.Order(), iters), nil
	case AlgoBig:
		env := p.hadoopEnv(nodes)
		s, err := bigtensor.New(env, x, p.Rank, p.Seed)
		if err != nil {
			return nil, err
		}
		return measureIterations(env.C, s, x.Order(), iters), nil
	}
	panic("experiments: unknown algorithm " + string(algo))
}

// generate builds the scaled dataset for a Table 5 config.
func (p Params) generate(name string) (*tensor.COO, workload.Config, error) {
	cfg, err := workload.ByName(name)
	if err != nil {
		return nil, cfg, err
	}
	return cfg.Generate(p.Scale), cfg, nil
}
