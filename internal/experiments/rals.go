package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"cstf/internal/cpals"
	"cstf/internal/dist"
	"cstf/internal/rals"
	"cstf/internal/tensor"
)

// Randomized-ALS benchmark: exact CP-ALS vs leverage-score-sampled ALS
// (internal/rals) on the compute-regime tensor, across sample budgets. Every
// row's fit is the EXACT fit over the full tensor — the sampling only ever
// accelerates the solves, never the evaluation — so fit_vs_exact compares
// like with like. The report also re-runs one sampled configuration twice
// serially and once over real TCP workers, checking both repeats bitwise:
// the table doubles as the determinism acceptance test at benchmark scale.

// RALSBenchConfig sizes the randomized-ALS benchmark; tests shrink it.
type RALSBenchConfig struct {
	Dims      []int   // planted tensor shape
	NNZ       int     // nonzeros
	TrueRank  int     // planted rank
	Rank      int     // decomposition rank (0 = Params.Rank)
	Block     int     // dense-block side (GenBlockSparse); 0 = GenLowRank
	Noise     float64 // additive noise level
	GenSeed   uint64  // tensor generator seed
	Iters     int     // ALS iterations (sampled runs use the same count)
	Fractions []float64
	Resample  int // sampled-run epoch length (iterations per redraw)
	Polish    int // sampled-run trailing exact iterations
	// DistWorkers, when > 0, re-runs the first acceptable sampled row over
	// that many real TCP loopback workers and checks it bitwise.
	DistWorkers int
	// MinFitRatio/MaxTimeRatio define "acceptable" (0 selects the report
	// bar: >= 0.99 of the exact fit in <= 0.5x the exact wall time). Tests
	// loosen the time bar, which is meaningless at toy sizes.
	MinFitRatio  float64
	MaxTimeRatio float64
}

// DefaultRALSBenchConfig returns the report sizing: the compute-regime
// tensor of the distributed benchmark, swept over sample fractions with a
// short exact polish.
func DefaultRALSBenchConfig() RALSBenchConfig {
	d := ComputeDistBenchConfig()
	return RALSBenchConfig{
		Dims:        d.Dims,
		NNZ:         d.NNZ,
		TrueRank:    d.TrueRank,
		Rank:        d.Rank,
		Block:       d.Block,
		Noise:       d.Noise,
		GenSeed:     d.GenSeed,
		Iters:       d.Iters,
		Fractions:   []float64{0.02, 0.05, 0.10, 0.15},
		Resample:    5,
		Polish:      6,
		DistWorkers: 4,
	}
}

// RALSRow is one configuration's measurements.
type RALSRow struct {
	Exact            bool    `json:"exact,omitempty"` // the exact CP-ALS reference row
	SampleFraction   float64 `json:"sample_fraction,omitempty"`
	ResampleEvery    int     `json:"resample_every,omitempty"`
	ExactFinishIters int     `json:"exact_finish_iters,omitempty"`
	WallMs           float64 `json:"wall_ms"`
	Fit              float64 `json:"fit"`
	FitVsExact       float64 `json:"fit_vs_exact"`
	TimeVsExact      float64 `json:"time_vs_exact"`
}

// RALSReport is the machine-readable result (results/BENCH_rals.json).
type RALSReport struct {
	Dims  []int     `json:"dims"`
	NNZ   int       `json:"nnz"`
	Rank  int       `json:"rank"`
	Iters int       `json:"iters"`
	Block int       `json:"block,omitempty"`
	Rows  []RALSRow `json:"rows"`
	// AcceptedFraction is the smallest swept fraction reaching >= 0.99 of
	// the exact fit in <= 0.5x the exact wall time (0 when none did).
	AcceptedFraction float64 `json:"accepted_fraction,omitempty"`
	// BitwiseRepeat: re-running the accepted configuration with the same
	// seed reproduced the factors bit for bit.
	BitwiseRepeat bool `json:"bitwise_repeat"`
	// BitwiseDist: the accepted configuration over DistWorkers real TCP
	// workers matched the serial sampled run bit for bit.
	BitwiseDist bool `json:"bitwise_dist"`
	DistWorkers int  `json:"dist_workers,omitempty"`
}

// WriteJSON writes the report as indented JSON.
func (r *RALSReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RALSBench runs the benchmark with the default sizing.
func RALSBench(p Params) (*RALSReport, error) {
	return RALSBenchWith(p, DefaultRALSBenchConfig())
}

// RALSBenchWith generates the planted tensor, solves it exactly, then once
// per sample fraction, and re-runs the first acceptable sampled row for the
// bitwise repeat and distributed checks.
func RALSBenchWith(p Params, cfg RALSBenchConfig) (*RALSReport, error) {
	rank := cfg.Rank
	if rank == 0 {
		rank = p.Rank
	}
	if rank < 2 {
		rank = 2
	}
	var x *tensor.COO
	if cfg.Block > 0 {
		x = tensor.GenBlockSparse(cfg.GenSeed, cfg.NNZ, cfg.TrueRank, cfg.Block, cfg.Noise, cfg.Dims...)
	} else {
		x = tensor.GenLowRank(cfg.GenSeed, cfg.NNZ, cfg.TrueRank, cfg.Noise, cfg.Dims...)
	}
	rep := &RALSReport{Dims: cfg.Dims, NNZ: x.NNZ(), Rank: rank, Iters: cfg.Iters, Block: cfg.Block}
	minFit, maxTime := cfg.MinFitRatio, cfg.MaxTimeRatio
	if minFit == 0 {
		minFit = 0.99
	}
	if maxTime == 0 {
		maxTime = 0.5
	}

	benchSettle()
	start := time.Now()
	exact, err := cpals.Solve(x, cpals.Options{Rank: rank, MaxIters: cfg.Iters, Seed: p.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: rals bench exact solve failed: %w", err)
	}
	exactMs := time.Since(start).Seconds() * 1e3
	rep.Rows = append(rep.Rows, RALSRow{
		Exact: true, WallMs: exactMs, Fit: exact.Fit(), FitVsExact: 1, TimeVsExact: 1,
	})

	ralsOpts := func(frac float64) rals.Options {
		return rals.Options{
			Rank:             rank,
			MaxIters:         cfg.Iters,
			Seed:             p.Seed,
			SampleFraction:   frac,
			ResampleEvery:    cfg.Resample,
			ExactFinishIters: cfg.Polish,
			FinalFitOnly:     true,
		}
	}

	var accepted *cpals.Result
	for _, frac := range cfg.Fractions {
		benchSettle()
		start = time.Now()
		res, err := rals.Solve(x, ralsOpts(frac))
		if err != nil {
			return nil, fmt.Errorf("experiments: rals bench at fraction %g failed: %w", frac, err)
		}
		wallMs := time.Since(start).Seconds() * 1e3
		row := RALSRow{
			SampleFraction:   frac,
			ResampleEvery:    cfg.Resample,
			ExactFinishIters: cfg.Polish,
			WallMs:           wallMs,
			Fit:              res.Fit(),
			FitVsExact:       res.Fit() / exact.Fit(),
			TimeVsExact:      wallMs / exactMs,
		}
		rep.Rows = append(rep.Rows, row)
		if accepted == nil && row.FitVsExact >= minFit && row.TimeVsExact <= maxTime {
			rep.AcceptedFraction = frac
			accepted = res
		}
	}
	if accepted == nil {
		return rep, nil
	}

	// Determinism at benchmark scale: same seed, same factors, bit for bit —
	// serially and over a real worker fleet.
	repeat, err := rals.Solve(x, ralsOpts(rep.AcceptedFraction))
	if err != nil {
		return nil, fmt.Errorf("experiments: rals bench repeat failed: %w", err)
	}
	rep.BitwiseRepeat = bitwiseEqual(accepted, repeat)
	if cfg.DistWorkers > 0 {
		lc, err := dist.StartInProcess(cfg.DistWorkers)
		if err != nil {
			return nil, err
		}
		distRes, _, err := dist.SolveSampled(x, ralsOpts(rep.AcceptedFraction), lc.Config())
		lc.Close()
		if err != nil {
			return nil, fmt.Errorf("experiments: rals bench with %d workers failed: %w", cfg.DistWorkers, err)
		}
		rep.BitwiseDist = bitwiseEqual(accepted, distRes)
		rep.DistWorkers = cfg.DistWorkers
	}
	return rep, nil
}

// RenderRALSBench formats the report as a text table.
func RenderRALSBench(r *RALSReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Randomized leverage-score-sampled ALS: %v, %d nnz, rank %d, %d iters",
		r.Dims, r.NNZ, r.Rank, r.Iters)
	if r.Block > 0 {
		fmt.Fprintf(&b, ", block %d", r.Block)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-24s %9s %8s %12s %13s\n",
		"config", "wall ms", "fit", "fit/exact", "time/exact")
	for _, row := range r.Rows {
		name := "exact cp-als"
		if !row.Exact {
			name = fmt.Sprintf("sampled %4.0f%% e%d p%d",
				row.SampleFraction*100, row.ResampleEvery, row.ExactFinishIters)
		}
		fmt.Fprintf(&b, "%-24s %9.1f %8.4f %12.4f %13.2f\n",
			name, row.WallMs, row.Fit, row.FitVsExact, row.TimeVsExact)
	}
	if r.AcceptedFraction > 0 {
		fmt.Fprintf(&b, "accepted: %.0f%% budget reaches >= 0.99 of the exact fit in <= 0.5x the exact wall time\n",
			r.AcceptedFraction*100)
		fmt.Fprintf(&b, "bitwise: repeat %v", r.BitwiseRepeat)
		if r.DistWorkers > 0 {
			fmt.Fprintf(&b, ", %d dist workers %v", r.DistWorkers, r.BitwiseDist)
		}
		b.WriteByte('\n')
	} else {
		b.WriteString("WARNING: no swept budget met the 0.99-fit / 0.5x-time bar\n")
	}
	return b.String()
}
