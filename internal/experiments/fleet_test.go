package experiments

import (
	"strings"
	"testing"
)

// A shrunken FleetBench must complete every phase with zero failed
// queries, report a measured recall on approx rows, and roll a reload
// across the whole fleet without drops — the same invariants
// `cstf-bench -exp serve` enforces at full size.
func TestFleetBenchSmall(t *testing.T) {
	p := DefaultParams()
	cfg := FleetBenchConfig{
		Dims:          []int{2000, 800, 300},
		Rank:          4,
		ReplicaCounts: []int{1, 2},
		Clients:       4,
		Requests:      300,
		Warmup:        200,
		WorkingSet:    100,
		CacheSize:     120,
		RecallQueries: 30,
		K:             5,
	}
	rep, err := FleetBenchWith(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(cfg.ReplicaCounts); len(rep.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(rep.Rows), want)
	}
	for _, row := range rep.Rows {
		if row.Errors != 0 || row.Shed != 0 {
			t.Fatalf("dropped queries: %+v", row)
		}
		if row.Requests == 0 || row.QPS <= 0 {
			t.Fatalf("no throughput: %+v", row)
		}
		if row.P99Micros < row.P50Micros {
			t.Fatalf("percentiles inverted: %+v", row)
		}
		if !row.Approx && row.RecallAtK != 1 {
			t.Fatalf("exact row reports recall %v: %+v", row.RecallAtK, row)
		}
		if row.Approx && (row.RecallAtK <= 0 || row.RecallAtK > 1) {
			t.Fatalf("approx recall out of range: %+v", row)
		}
	}
	if rep.ScalingX <= 0 {
		t.Fatalf("no scaling measured: %+v", rep)
	}
	if rep.Reload.Reloaded != cfg.ReplicaCounts[len(cfg.ReplicaCounts)-1] {
		t.Fatalf("reload drill incomplete: %+v", rep.Reload)
	}
	if rep.Reload.Errors != 0 || rep.Reload.Shed != 0 {
		t.Fatalf("reload drill dropped queries: %+v", rep.Reload)
	}
	out := RenderFleetBench(rep)
	for _, h := range []string{"replicas", "recall@k", "rolling reload drill"} {
		if !strings.Contains(out, h) {
			t.Fatalf("render missing %q:\n%s", h, out)
		}
	}
}
