package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestDistBenchSmall(t *testing.T) {
	p := DefaultParams()
	p.Rank = 3
	rep, err := DistBenchWith(p, DistBenchConfig{
		Dims:       []int{80, 60, 40},
		NNZ:        4000,
		TrueRank:   3,
		Iters:      3,
		WorkerSets: []int{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 { // serial + 2 worker configs
		t.Fatalf("want 3 rows, got %d", len(rep.Rows))
	}
	if !rep.AllExact {
		t.Fatalf("distributed runs diverged from serial: %+v", rep.Rows)
	}
	for _, row := range rep.Rows[1:] {
		if row.WireSentMB <= 0 || row.WireRecvMB <= 0 {
			t.Fatalf("worker row missing wire bytes: %+v", row)
		}
		if row.WallMs <= 0 {
			t.Fatalf("worker row missing wall time: %+v", row)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back DistReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if RenderDistBench(rep) == "" {
		t.Fatal("empty render")
	}
}
