package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestDistBenchSmall(t *testing.T) {
	p := DefaultParams()
	p.Rank = 3
	rep, err := DistBenchWith(p, DistBenchConfig{
		Dims:       []int{80, 60, 40},
		NNZ:        4000,
		TrueRank:   3,
		Noise:      0.05,
		GenSeed:    p.Seed,
		Iters:      3,
		WorkerSets: []int{1, 2},
		CSF:        true,
		DeltaAB:    true,
		Chaos:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// serial coo + serial csf + (delta, full) x {1,2} workers + chaos row.
	if len(rep.Rows) != 7 {
		t.Fatalf("want 7 rows, got %d: %+v", len(rep.Rows), rep.Rows)
	}
	if !rep.AllExact {
		t.Fatalf("distributed runs diverged from serial: %+v", rep.Rows)
	}
	if !rep.Rows[0].Serial || rep.Rows[0].Workers != 0 || rep.Rows[0].Kernel != "coo" {
		t.Fatalf("first row is not the serial COO reference: %+v", rep.Rows[0])
	}
	if !rep.Rows[1].Serial || rep.Rows[1].Kernel != "csf" {
		t.Fatalf("second row is not the serial CSF reference: %+v", rep.Rows[1])
	}
	chaosRow := rep.Rows[len(rep.Rows)-1]
	if !chaosRow.Chaos || chaosRow.Serial {
		t.Fatalf("last row is not the chaos row: %+v", chaosRow)
	}
	if !chaosRow.BitwiseSame {
		t.Fatalf("chaos run diverged from serial: %+v", chaosRow)
	}
	for _, row := range rep.Rows {
		if row.Serial {
			continue
		}
		if row.WireSentMB <= 0 || row.WireRecvMB <= 0 || row.WireShardMB <= 0 {
			t.Fatalf("worker row missing wire bytes: %+v", row)
		}
		if row.WallMs <= 0 {
			t.Fatalf("worker row missing wall time: %+v", row)
		}
		if !row.DeltaBroadcast && row.WireDeltaFrames != 0 {
			t.Fatalf("full-broadcast row reported delta frames: %+v", row)
		}
	}
	var buf bytes.Buffer
	full := &DistBenchReport{Compute: rep, AllExact: rep.AllExact}
	if err := full.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Satellite check: serial rows are self-describing — `"serial": true`
	// with the workers key omitted — and the delta codec column is present.
	js := buf.String()
	if !strings.Contains(js, `"serial": true`) {
		t.Fatalf("JSON missing serial marker:\n%s", js)
	}
	if strings.Contains(js, `"workers": 0`) {
		t.Fatalf("JSON still emits workers: 0 for the serial row:\n%s", js)
	}
	if !strings.Contains(js, `"wire_delta_frames"`) {
		t.Fatalf("JSON missing wire_delta_frames column:\n%s", js)
	}
	var back DistBenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if RenderDistBench(full) == "" {
		t.Fatal("empty render")
	}
}
