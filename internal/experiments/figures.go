package experiments

import (
	"fmt"
	"sort"

	"cstf/internal/bigtensor"
	"cstf/internal/core"
)

// ---------------------------------------------------------------------------
// Figure 2: CP-ALS runtime per iteration vs cluster size, 3rd-order tensors,
// COO / QCOO / BIGtensor on delicious3d, nell1, synt3d.
// ---------------------------------------------------------------------------

// Fig2Datasets are the three 3rd-order datasets of Figure 2.
var Fig2Datasets = []string{"delicious3d", "nell1", "synt3d"}

// Fig2Row is one point of Figure 2: per-iteration runtimes (modeled
// seconds, steady state) for the three systems at one cluster size.
type Fig2Row struct {
	Dataset     string
	Nodes       int
	COO         float64
	QCOO        float64
	BIGtensor   float64
	SpeedupCOO  float64 // BIGtensor / COO
	SpeedupQCOO float64 // BIGtensor / QCOO
	RatioQvsCOO float64 // COO / QCOO  (>1 means QCOO faster)
}

// Fig2 regenerates Figure 2(a-c).
func Fig2(p Params) ([]Fig2Row, error) {
	var rows []Fig2Row
	for _, ds := range Fig2Datasets {
		x, _, err := p.generate(ds)
		if err != nil {
			return nil, err
		}
		for _, nodes := range PaperNodes {
			row := Fig2Row{Dataset: ds, Nodes: nodes}
			for _, algo := range []Algo{AlgoCOO, AlgoQ, AlgoBig} {
				stats, err := p.runAlgo(algo, nodes, x, 2)
				if err != nil {
					return nil, err
				}
				sec := stats[1].Seconds // steady-state iteration
				switch algo {
				case AlgoCOO:
					row.COO = sec
				case AlgoQ:
					row.QCOO = sec
				case AlgoBig:
					row.BIGtensor = sec
				}
			}
			row.SpeedupCOO = row.BIGtensor / row.COO
			row.SpeedupQCOO = row.BIGtensor / row.QCOO
			row.RatioQvsCOO = row.COO / row.QCOO
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figure 3: CP-ALS runtime per iteration vs cluster size, 4th-order tensors,
// COO vs QCOO on delicious4d and flickr (BIGtensor cannot run these).
// ---------------------------------------------------------------------------

// Fig3Datasets are the 4th-order datasets of Figure 3.
var Fig3Datasets = []string{"delicious4d", "flickr"}

// Fig3Row is one point of Figure 3.
type Fig3Row struct {
	Dataset     string
	Nodes       int
	COO         float64
	QCOO        float64
	RatioQvsCOO float64 // COO / QCOO
}

// Fig3 regenerates Figure 3(a-b).
func Fig3(p Params) ([]Fig3Row, error) {
	var rows []Fig3Row
	for _, ds := range Fig3Datasets {
		x, _, err := p.generate(ds)
		if err != nil {
			return nil, err
		}
		for _, nodes := range PaperNodes {
			row := Fig3Row{Dataset: ds, Nodes: nodes}
			coo, err := p.runAlgo(AlgoCOO, nodes, x, 2)
			if err != nil {
				return nil, err
			}
			q, err := p.runAlgo(AlgoQ, nodes, x, 2)
			if err != nil {
				return nil, err
			}
			row.COO = coo[1].Seconds
			row.QCOO = q[1].Seconds
			row.RatioQvsCOO = row.COO / row.QCOO
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figure 4: remote and local shuffle bytes read during one steady-state
// CP-ALS iteration, stacked per MTTKRP mode, COO vs QCOO on delicious3d and
// flickr, 8 nodes.
// ---------------------------------------------------------------------------

// Fig4Nodes is the cluster size of the Figure 4 measurement.
const Fig4Nodes = 8

// Fig4Datasets are the Figure 4 datasets.
var Fig4Datasets = []string{"delicious3d", "flickr"}

// Fig4Bar is one stacked bar: shuffle bytes per phase for one algorithm on
// one dataset. Bytes are raw measured values of the scaled run;
// FullScaleGB extrapolates by 1/scale for paper comparison.
type Fig4Bar struct {
	Dataset  string
	Algo     Algo
	ByPhase  map[string]float64 // bytes per phase (MTTKRP-n, Other)
	Total    float64
	FullGB   float64 // Total / scale, in GB
	Phases   []string
	IsRemote bool
}

// Fig4Result carries both panels of Figure 4 plus the headline reductions.
type Fig4Result struct {
	Remote, Local []Fig4Bar
	// RemoteReduction[dataset] = 1 - QCOO/COO remote bytes.
	RemoteReduction map[string]float64
	LocalReduction  map[string]float64
}

// Fig4 regenerates Figure 4(a-b).
func Fig4(p Params) (*Fig4Result, error) {
	res := &Fig4Result{
		RemoteReduction: map[string]float64{},
		LocalReduction:  map[string]float64{},
	}
	type key struct {
		ds   string
		algo Algo
	}
	remote := map[key]float64{}
	local := map[key]float64{}
	for _, ds := range Fig4Datasets {
		x, _, err := p.generate(ds)
		if err != nil {
			return nil, err
		}
		for _, algo := range []Algo{AlgoCOO, AlgoQ} {
			stats, err := p.runAlgo(algo, Fig4Nodes, x, 2)
			if err != nil {
				return nil, err
			}
			st := stats[1] // steady-state iteration
			phases := make([]string, 0, len(st.RemByPhase))
			for ph := range st.TimeByPhase {
				phases = append(phases, ph)
			}
			sort.Strings(phases)
			res.Remote = append(res.Remote, Fig4Bar{
				Dataset: ds, Algo: algo, ByPhase: st.RemByPhase,
				Total: st.Remote, FullGB: st.Remote / p.Scale / 1e9,
				Phases: phases, IsRemote: true,
			})
			res.Local = append(res.Local, Fig4Bar{
				Dataset: ds, Algo: algo, ByPhase: st.LocByPhase,
				Total: st.Local, FullGB: st.Local / p.Scale / 1e9,
				Phases: phases,
			})
			remote[key{ds, algo}] = st.Remote
			local[key{ds, algo}] = st.Local
		}
		res.RemoteReduction[ds] = 1 - remote[key{ds, AlgoQ}]/remote[key{ds, AlgoCOO}]
		res.LocalReduction[ds] = 1 - local[key{ds, AlgoQ}]/local[key{ds, AlgoCOO}]
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 5: per-mode MTTKRP runtime for COO, QCOO, BIGtensor on nell1 and
// delicious3d, 4 nodes. Measured over the FIRST iteration, so QCOO's
// mode-1 bar carries the queue-initialization overhead the paper discusses.
// ---------------------------------------------------------------------------

// Fig5Nodes is the cluster size of the Figure 5 measurement.
const Fig5Nodes = 4

// Fig5Datasets are the Figure 5 datasets.
var Fig5Datasets = []string{"nell1", "delicious3d"}

// Fig5Row is the per-mode runtime of one algorithm on one dataset.
type Fig5Row struct {
	Dataset string
	Algo    Algo
	Mode    [3]float64 // modeled seconds for MTTKRP-1..3
}

// Fig5 regenerates Figure 5(a-b).
func Fig5(p Params) ([]Fig5Row, error) {
	var rows []Fig5Row
	for _, ds := range Fig5Datasets {
		x, _, err := p.generate(ds)
		if err != nil {
			return nil, err
		}
		for _, algo := range []Algo{AlgoCOO, AlgoQ, AlgoBig} {
			// Cumulative metrics over solver construction plus one full
			// iteration: construction charges (e.g. QCOO's queue build)
			// land in their phase labels.
			var cum IterStats
			switch algo {
			case AlgoCOO:
				ctx := p.sparkCtx(Fig5Nodes)
				s := core.NewCOOState(ctx, x, p.Rank, p.Seed)
				for n := 0; n < 3; n++ {
					s.Step(n)
				}
				cum = statsFrom(ctx.Cluster.Metrics())
			case AlgoQ:
				ctx := p.sparkCtx(Fig5Nodes)
				s := core.NewQCOOState(ctx, x, p.Rank, p.Seed)
				for n := 0; n < 3; n++ {
					s.Step(n)
				}
				cum = statsFrom(ctx.Cluster.Metrics())
			case AlgoBig:
				env := p.hadoopEnv(Fig5Nodes)
				s, err := bigtensor.New(env, x, p.Rank, p.Seed)
				if err != nil {
					return nil, err
				}
				for n := 0; n < 3; n++ {
					s.Step(n)
				}
				cum = statsFrom(env.C.Metrics())
			}
			row := Fig5Row{Dataset: ds, Algo: algo}
			for n := 0; n < 3; n++ {
				row.Mode[n] = cum.TimeByPhase[fmt.Sprintf("MTTKRP-%d", n+1)]
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
