package experiments

import "testing"

func TestAblationCachingRawWins(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	rows, err := AblationCaching(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		// Section 4.1's stated choice: raw caching is faster for the
		// iterative algorithm, despite its larger footprint.
		if r.RawAdvantage <= 1.0 {
			t.Errorf("nodes=%d: raw caching must win (serial/raw = %.3f)", r.Nodes, r.RawAdvantage)
		}
		if r.SerialCachedGB >= r.RawCachedGB {
			t.Errorf("nodes=%d: serialized footprint (%.1f GB) must be below raw (%.1f GB)",
				r.Nodes, r.SerialCachedGB, r.RawCachedGB)
		}
	}
	// The advantage is larger on small clusters only if memory pressure
	// bites; at minimum it must not flip sign anywhere (already checked).
}

func TestAblationGramReuseSavesOtherTime(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	rows, err := AblationGramReuse(testParams())
	if err != nil {
		t.Fatal(err)
	}
	var with, without GramReuseRow
	for _, r := range rows {
		if r.Reuse {
			with = r
		} else {
			without = r
		}
	}
	if with.OtherSeconds >= without.OtherSeconds {
		t.Errorf("gram reuse must shrink the non-MTTKRP time: %.2fs with vs %.2fs without",
			with.OtherSeconds, without.OtherSeconds)
	}
	if with.Seconds > without.Seconds {
		t.Errorf("gram reuse must not slow the iteration: %.2fs vs %.2fs",
			with.Seconds, without.Seconds)
	}
}

func TestAblationRankSweepReductionShrinks(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	rows, err := AblationRankSweep(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("expected 5 ranks, got %d", len(rows))
	}
	for i, r := range rows {
		if i > 0 && r.Reduction > rows[i-1].Reduction+0.02 {
			t.Errorf("reduction should shrink with rank: R=%d %.1f%% vs R=%d %.1f%%",
				r.Rank, 100*r.Reduction, rows[i-1].Rank, 100*rows[i-1].Reduction)
		}
	}
	// At the paper's R=2 the reduction is roughly a third (Figure 4).
	if rows[0].Rank != 2 || rows[0].Reduction < 0.25 || rows[0].Reduction > 0.45 {
		t.Errorf("R=2 reduction %.1f%% outside [25%%, 45%%]", 100*rows[0].Reduction)
	}
	// The queue strategy's limit: by R=32 the advantage is gone — the
	// queue's N-1 rank-sized rows outweigh COO's single accumulator.
	if last := rows[len(rows)-1]; last.Reduction > 0.05 {
		t.Errorf("R=%d reduction %.1f%% — expected the advantage to vanish at high rank",
			last.Rank, 100*last.Reduction)
	}
}

func TestAblationOrderSweepShuffleCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	rows, err := AblationOrderSweep(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("expected orders 3-5, got %d rows", len(rows))
	}
	for _, r := range rows {
		// Section 5's exact shuffle counts per CP iteration.
		if r.COOShuffles != r.Order*r.Order {
			t.Errorf("order %d: COO shuffles %d, want N^2=%d", r.Order, r.COOShuffles, r.Order*r.Order)
		}
		if r.QCOOShuffles != 2*r.Order {
			t.Errorf("order %d: QCOO shuffles %d, want 2N=%d", r.Order, r.QCOOShuffles, 2*r.Order)
		}
		// QCOO must reduce shuffled bytes at every order under our
		// accounting (the magnitude differs from the paper's 1/N law;
		// see EXPERIMENTS.md).
		if r.ByteReduction <= 0.15 {
			t.Errorf("order %d: byte reduction %.1f%% too small", r.Order, 100*r.ByteReduction)
		}
	}
}

func TestResilienceSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	rows, err := ResilienceSweep(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].FailureRate != 0 {
		t.Fatalf("rows: %+v", rows)
	}
	if rows[0].Failures != 0 || rows[0].Overhead != 1 {
		t.Fatalf("baseline row must be failure-free: %+v", rows[0])
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Failures <= 0 {
			t.Errorf("rate %.2f: no failures injected", rows[i].FailureRate)
		}
		if rows[i].Seconds <= rows[0].Seconds {
			t.Errorf("rate %.2f: no runtime overhead recorded", rows[i].FailureRate)
		}
	}
	// Recovery is cheap: even 5%% task failures should cost well under 2x.
	if last := rows[len(rows)-1]; last.Overhead > 2 {
		t.Errorf("5%%%% failure overhead %.2fx is implausibly high", last.Overhead)
	}
}

func TestCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	rows, err := CrashSweep(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[0].CrashStage != 0 {
		t.Fatalf("rows: %+v", rows)
	}
	if rows[0].Recomputed != 0 || rows[0].Overhead != 1 {
		t.Fatalf("baseline row must be fault-free: %+v", rows[0])
	}
	for _, r := range rows[1:] {
		if r.Recomputed <= 0 {
			t.Errorf("crash at stage %d: nothing recomputed from lineage", r.CrashStage)
		}
		if r.RecoverySeconds <= 0 {
			t.Errorf("crash at stage %d: no recovery time charged", r.CrashStage)
		}
		if r.Overhead <= 1 {
			t.Errorf("crash at stage %d: overhead %.3fx not above baseline", r.CrashStage, r.Overhead)
		}
		// Lineage recomputation touches only lost partitions; a single crash
		// must not come close to doubling two full iterations.
		if r.Overhead > 2 {
			t.Errorf("crash at stage %d: overhead %.2fx implausibly high", r.CrashStage, r.Overhead)
		}
	}
}

func TestStragglerSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	rows, err := StragglerSweep(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].Factor != 1 {
		t.Fatalf("rows: %+v", rows)
	}
	for i, r := range rows {
		if i > 0 && r.Overhead <= rows[i-1].Overhead {
			t.Errorf("slowdown %.0fx: overhead %.3fx not above %.0fx's %.3fx",
				r.Factor, r.Overhead, rows[i-1].Factor, rows[i-1].Overhead)
		}
		if r.SpecSeconds > r.Seconds+1e-9 {
			t.Errorf("slowdown %.0fx: speculation made things worse (%.1fs vs %.1fs)",
				r.Factor, r.SpecSeconds, r.Seconds)
		}
	}
	// At 8x slowdown speculation must recover a visible share of the loss.
	if last := rows[len(rows)-1]; last.SpecGain <= 1.05 {
		t.Errorf("8x straggler: speculation gain %.3fx too small", last.SpecGain)
	}
}

func TestCheckpointSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	rows, err := CheckpointSweep(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].Every != 0 {
		t.Fatalf("rows: %+v", rows)
	}
	if rows[0].CheckpointSeconds != 0 || rows[0].Overhead != 1 {
		t.Fatalf("baseline row must be checkpoint-free: %+v", rows[0])
	}
	for i, r := range rows[1:] {
		if r.CheckpointSeconds <= 0 {
			t.Errorf("interval %d: no checkpoint time charged", r.Every)
		}
		if r.Overhead <= 1 {
			t.Errorf("interval %d: overhead %.4fx not above baseline", r.Every, r.Overhead)
		}
		if i > 0 && r.CheckpointSeconds <= rows[i].CheckpointSeconds {
			t.Errorf("more frequent checkpoints must cost more: every %d = %.2fs vs every %d = %.2fs",
				r.Every, r.CheckpointSeconds, rows[i].Every, rows[i].CheckpointSeconds)
		}
	}
}

func TestAblationPartitions(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	rows, err := AblationPartitions(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows: %d", len(rows))
	}
	// All configurations must be within 2x of the best (granularity is a
	// second-order effect), and every run must complete with sane output.
	best := rows[0].Seconds
	for _, r := range rows {
		if r.Seconds <= 0 {
			t.Fatalf("tpc=%d: non-positive time", r.TasksPerCore)
		}
		if r.Seconds < best {
			best = r.Seconds
		}
	}
	for _, r := range rows {
		if r.Seconds > 2*best {
			t.Errorf("tpc=%d: %.1fs more than 2x the best (%.1fs)", r.TasksPerCore, r.Seconds, best)
		}
	}
}
