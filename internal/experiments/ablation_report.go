package experiments

import (
	"fmt"
	"strings"
)

// RenderAblationCaching formats the raw-vs-serialized caching ablation.
func RenderAblationCaching(rows []CachingRow) string {
	var b strings.Builder
	b.WriteString("Ablation: tensor cache storage level, CSTF-COO on delicious3d\n")
	b.WriteString("(Section 4.1 chooses raw caching for iterative algorithms)\n")
	fmt.Fprintf(&b, "%-6s %12s %12s %12s %14s %14s\n",
		"nodes", "raw s/iter", "ser s/iter", "raw adv.", "raw cache", "ser cache")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %12.1f %12.1f %11.2fx %11.1f GB %11.1f GB\n",
			r.Nodes, r.RawSeconds, r.SerialSeconds, r.RawAdvantage,
			r.RawCachedGB, r.SerialCachedGB)
	}
	return b.String()
}

// RenderAblationGramReuse formats the gram-reuse ablation.
func RenderAblationGramReuse(rows []GramReuseRow) string {
	var b strings.Builder
	b.WriteString("Ablation: once-per-update gram computation (QCOO on nell1, 8 nodes)\n")
	fmt.Fprintf(&b, "%-14s %12s %16s\n", "gram reuse", "s/iter", "non-MTTKRP s")
	for _, r := range rows {
		mode := "off"
		if r.Reuse {
			mode = "on"
		}
		fmt.Fprintf(&b, "%-14s %12.1f %16.1f\n", mode, r.Seconds, r.OtherSeconds)
	}
	return b.String()
}

// RenderAblationRankSweep formats the rank sweep of the queue strategy's
// communication advantage.
func RenderAblationRankSweep(rows []RankSweepRow) string {
	var b strings.Builder
	b.WriteString("Ablation: QCOO shuffle-byte reduction vs rank (delicious3d, 8 nodes)\n")
	fmt.Fprintf(&b, "%-6s %14s %14s %12s\n", "rank", "COO bytes", "QCOO bytes", "reduction")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %14.0f %14.0f %11.1f%%\n",
			r.Rank, r.COOBytes, r.QCOOBytes, 100*r.Reduction)
	}
	b.WriteString("(negative = the queue's N-1 rank-sized rows cost more than they save)\n")
	return b.String()
}

// RenderAblationOrderSweep formats the tensor-order sweep.
func RenderAblationOrderSweep(rows []OrderSweepRow) string {
	var b strings.Builder
	b.WriteString("Ablation: queue strategy across tensor orders (uniform 30k-nnz tensors, 8 nodes)\n")
	fmt.Fprintf(&b, "%-6s %14s %14s %16s %16s\n",
		"order", "COO shuffles", "QCOO shuffles", "byte reduction", "paper (1/N)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %14d %14d %15.1f%% %15.1f%%\n",
			r.Order, r.COOShuffles, r.QCOOShuffles, 100*r.ByteReduction, 100*r.PaperReduction)
	}
	b.WriteString("(shuffle counts are exact: N^2 vs 2N per iteration; byte accounting differs, see EXPERIMENTS.md)\n")
	return b.String()
}

// RenderResilience formats the failure-injection sweep.
func RenderResilience(rows []ResilienceRow) string {
	var b strings.Builder
	b.WriteString("Resilience: CSTF-COO iteration time under injected task failures (delicious3d, 8 nodes)\n")
	fmt.Fprintf(&b, "%-12s %12s %10s %10s\n", "failure rate", "s/iter", "failures", "overhead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12.2f %12.1f %10d %9.2fx\n", r.FailureRate, r.Seconds, r.Failures, r.Overhead)
	}
	return b.String()
}

// RenderAblationPartitions formats the task-granularity sweep.
func RenderAblationPartitions(rows []PartitionsRow) string {
	var b strings.Builder
	b.WriteString("Ablation: task granularity, CSTF-COO on nell1 (8 nodes)\n")
	fmt.Fprintf(&b, "%-14s %12s\n", "tasks/core", "s/iter")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14d %12.1f\n", r.TasksPerCore, r.Seconds)
	}
	return b.String()
}
