package experiments

import (
	"strings"
	"testing"
)

// A shrunken StreamBench must run every window, publish every version, get
// at least one hot reload, and stay close to the batch fit — the same
// invariants `cstf-bench -exp stream` enforces at full size.
func TestStreamBenchSmall(t *testing.T) {
	p := DefaultParams()
	cfg := StreamBenchConfig{
		Dims:           []int{60, 50, 40},
		InitNNZ:        4000,
		TrainIters:     3,
		Windows:        4,
		WindowSize:     400,
		FullSweepEvery: 2,
		GrowEvery:      300,
	}
	rep, err := StreamBenchWith(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != cfg.Windows {
		t.Fatalf("got %d window rows, want %d", len(rep.Rows), cfg.Windows)
	}
	for _, row := range rep.Rows {
		if row.Events == 0 || row.TouchedRows == 0 {
			t.Fatalf("window did no work: %+v", row)
		}
		if row.Version == 0 {
			t.Fatalf("window not published: %+v", row)
		}
		if row.LagMs < 0 {
			t.Fatalf("negative freshness lag: %+v", row)
		}
	}
	if rep.Published != cfg.Windows {
		t.Fatalf("published %d versions, want %d", rep.Published, cfg.Windows)
	}
	if rep.ServerReloads == 0 {
		t.Fatal("no hot reload observed")
	}
	if rep.FinalNNZ <= rep.InitNNZ {
		t.Fatalf("tensor did not grow: %d -> %d nnz", rep.InitNNZ, rep.FinalNNZ)
	}
	grew := false
	for m := range rep.Dims {
		if rep.FinalDims[m] > rep.Dims[m] {
			grew = true
		}
	}
	if !grew {
		t.Fatalf("GrowEvery never grew dims: %v -> %v", rep.Dims, rep.FinalDims)
	}
	if rep.FitDrift > 0.1 {
		t.Fatalf("streamed model drifted %v behind batch (stream %v, batch %v)",
			rep.FitDrift, rep.StreamFit, rep.BatchFit)
	}
	out := RenderStreamBench(rep)
	if !strings.Contains(out, "window") || !strings.Contains(out, "stream fit") {
		t.Fatalf("render missing headers:\n%s", out)
	}
	var sb strings.Builder
	if err := rep.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"\"lag_ms\"", "\"fit_drift\"", "\"window_vs_retrain_speedup\""} {
		if !strings.Contains(sb.String(), field) {
			t.Fatalf("JSON missing %s:\n%s", field, sb.String())
		}
	}
}
