package cluster

import (
	"fmt"
	"runtime"
	"sync"

	"cstf/internal/rng"
)

// Task describes the modeled cost of one task of a stage: where it runs and
// how much compute, shuffle I/O, and disk I/O it performs. The engines
// (internal/rdd, internal/mapreduce) build tasks; user code never does.
type Task struct {
	Node        int     // node the task executes on
	Flops       float64 // floating-point operations
	Records     float64 // records touched (per-record engine overhead)
	RemoteBytes float64 // shuffle bytes fetched from other nodes
	LocalBytes  float64 // shuffle bytes read from this node
	DiskBytes   float64 // HDFS bytes read or written
}

// Cluster is a simulated cluster of Nodes identical workers plus a driver.
// It executes real work on the host via Parallel and accounts modeled time
// and traffic via RunStage. A Cluster is safe for concurrent metric updates
// but stages themselves are issued sequentially by the engines, matching
// the synchronous stage execution of Spark jobs and Hadoop phases.
type Cluster struct {
	Nodes   int
	Profile Profile

	mu          sync.Mutex
	metrics     *Metrics
	phase       string
	cachedBytes []float64 // per node, currently persisted partition bytes
	simTime     float64
	workScale   float64 // variable-cost multiplier (see SetWorkScale)
	failRate    float64 // per-task failure probability (failure injection)
	failSeed    uint64
	stageSeq    uint64 // stage counter for deterministic failure draws
	tracing     bool
	trace       []TraceEvent

	pool chan struct{} // host-side worker tokens for Parallel
}

// New creates a simulated cluster with the given worker-node count.
func New(nodes int, p Profile) *Cluster {
	if nodes <= 0 {
		panic(fmt.Sprintf("cluster: invalid node count %d", nodes))
	}
	if p.CoresPerNode <= 0 {
		panic("cluster: profile needs at least one core per node")
	}
	w := runtime.GOMAXPROCS(0)
	c := &Cluster{
		Nodes:       nodes,
		Profile:     p,
		metrics:     newMetrics(),
		phase:       "Other",
		cachedBytes: make([]float64, nodes),
		workScale:   1,
		pool:        make(chan struct{}, w),
	}
	for i := 0; i < w; i++ {
		c.pool <- struct{}{}
	}
	return c
}

// SetWorkScale declares that the workload being executed is a 1/s-scale
// stand-in for the real one: all data-dependent costs (flops, records,
// bytes, cached memory) are multiplied by s when converting to modeled
// time, while fixed costs (stage scheduling latency, Hadoop job startup)
// stay as-is. Running a 1/1000-scale tensor with SetWorkScale(1000)
// therefore yields full-scale-equivalent runtimes with the correct
// fixed-vs-variable cost mix. Metrics (bytes, flops, records) remain RAW
// measured values of the scaled run; report-time extrapolation is the
// caller's choice.
func (c *Cluster) SetWorkScale(s float64) {
	if s <= 0 {
		panic("cluster: work scale must be positive")
	}
	c.mu.Lock()
	c.workScale = s
	c.mu.Unlock()
}

// NodeOf maps a partition index to the node hosting it (round-robin, the
// default Spark/Hadoop placement for evenly sized partition sets).
func (c *Cluster) NodeOf(partition int) int {
	if partition < 0 {
		panic("cluster: negative partition")
	}
	return partition % c.Nodes
}

// SetPhase labels all subsequent accounting (e.g. "MTTKRP-2"). Figure 4's
// per-mode breakdown is produced by switching phases around each MTTKRP.
func (c *Cluster) SetPhase(name string) {
	c.mu.Lock()
	c.phase = name
	c.mu.Unlock()
}

// Phase returns the current accounting label.
func (c *Cluster) Phase() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.phase
}

// Metrics returns a snapshot of the accumulated metrics.
func (c *Cluster) Metrics() *Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.metrics.Clone()
}

// SimTime returns the modeled seconds elapsed so far.
func (c *Cluster) SimTime() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.simTime
}

// ResetMetrics zeroes the metrics and the simulated clock (cache occupancy
// is preserved: persisted RDDs survive a measurement-window reset).
func (c *Cluster) ResetMetrics() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics = newMetrics()
	c.simTime = 0
}

// AddCached charges wire bytes of raw-cached data on the node hosting the
// given partition; Unpersist is AddCached with a negative size. The
// profile's RawCacheFactor converts wire size to deserialized JVM object
// size, and the result feeds the GC-pressure term of the cost model.
func (c *Cluster) AddCached(partition int, bytes float64) {
	f := c.Profile.RawCacheFactor
	if f <= 0 {
		f = 1
	}
	c.addCachedEffective(partition, bytes*f)
}

// AddCachedSerialized charges bytes cached at the serialized storage level:
// the footprint is the wire size itself (no object expansion), trading
// memory for per-read decode cost (Profile.DeserFactor).
func (c *Cluster) AddCachedSerialized(partition int, bytes float64) {
	c.addCachedEffective(partition, bytes)
}

func (c *Cluster) addCachedEffective(partition int, bytes float64) {
	n := c.NodeOf(partition)
	c.mu.Lock()
	c.cachedBytes[n] += bytes
	if c.cachedBytes[n] < 0 {
		c.cachedBytes[n] = 0
	}
	c.mu.Unlock()
}

// CachedBytes returns the total bytes currently persisted across the cluster.
func (c *Cluster) CachedBytes() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var s float64
	for _, v := range c.cachedBytes {
		s += v
	}
	return s
}

// RunStage charges the modeled execution of one stage consisting of the
// given tasks. wide marks a stage that begins with a shuffle read: it pays
// driver scheduling latency and increments the shuffle counter. The model:
//
//	gc(n)     = 1 + GCCoeff * cached(n) / NodeMemory
//	busy(n)   = (flops/CoreFlops + records*RecordCost) / Cores * gc(n)
//	          + remote/NetBandwidth + local/LocalBW + disk/DiskBW
//	          + TaskOverhead * ceil(tasks(n)/Cores)
//	stageTime = max_n busy(n) + [wide] (SchedBase + SchedPerNode*Nodes)
func (c *Cluster) RunStage(wide bool, tasks []Task) {
	p := c.Profile
	type nodeAcc struct {
		flops, records, remote, local, disk float64
		tasks                               int
	}
	acc := make([]nodeAcc, c.Nodes)
	var flopsTot, recTot, remoteTot, localTot, diskTot float64
	for _, t := range tasks {
		if t.Node < 0 || t.Node >= c.Nodes {
			panic(fmt.Sprintf("cluster: task on node %d of %d", t.Node, c.Nodes))
		}
		a := &acc[t.Node]
		a.flops += t.Flops
		a.records += t.Records
		a.remote += t.RemoteBytes
		a.local += t.LocalBytes
		a.disk += t.DiskBytes
		a.tasks++
		flopsTot += t.Flops
		recTot += t.Records
		remoteTot += t.RemoteBytes
		localTot += t.LocalBytes
		diskTot += t.DiskBytes
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.stageSeq++
	if c.failRate > 0 {
		// Deterministically re-execute failed tasks: attempt i of task t
		// fails while U(seed, stage, t, i) < rate, up to 3 retries. The
		// retried attempts add their full cost back onto the task's node.
		for ti := range tasks {
			t := &tasks[ti]
			retries := 0
			for attempt := 0; attempt < 3; attempt++ {
				if rng.UniformAt(c.failSeed, c.stageSeq, uint64(ti), uint64(attempt)) >= c.failRate {
					break
				}
				retries++
			}
			if retries > 0 {
				r := float64(retries)
				a := &acc[t.Node]
				a.flops += t.Flops * r
				a.records += t.Records * r
				a.remote += t.RemoteBytes * r
				a.local += t.LocalBytes * r
				a.disk += t.DiskBytes * r
				c.metrics.TaskFailures += retries
			}
		}
	}
	cores := float64(p.CoresPerNode)
	ws := c.workScale
	var maxBusy float64
	for n := 0; n < c.Nodes; n++ {
		a := acc[n]
		if a.tasks == 0 {
			continue
		}
		gc := 1 + p.GCCoeff*ws*c.cachedBytes[n]/p.NodeMemory
		busy := ws * ((a.flops/p.CoreFlops+a.records*p.RecordCost)/cores*gc +
			a.remote/p.NetBandwidth + a.local/p.LocalBW + a.disk/p.DiskBW)
		waves := (a.tasks + p.CoresPerNode - 1) / p.CoresPerNode
		busy += p.TaskOverhead * float64(waves)
		if busy > maxBusy {
			maxBusy = busy
		}
	}
	t := maxBusy
	if wide {
		t += p.SchedBase + p.SchedPerNode*float64(c.Nodes)
		c.metrics.Shuffles[c.phase]++
	}
	c.recordTrace("stage", wide, c.simTime, t, len(tasks), recTot, remoteTot, localTot)
	c.simTime += t
	ph := c.phase
	c.metrics.SimTime[ph] += t
	c.metrics.RemoteBytes[ph] += remoteTot
	c.metrics.LocalBytes[ph] += localTot
	c.metrics.Flops[ph] += flopsTot
	c.metrics.Records[ph] += recTot
	c.metrics.DiskBytes[ph] += diskTot
	c.metrics.Stages++
	c.metrics.Tasks += len(tasks)
}

// InjectTaskFailures makes every task fail independently with the given
// probability (deterministically in seed); failed tasks are retried up to
// three times, re-paying their cost each attempt, the way Spark and Hadoop
// recover from lost executors. Rate 0 disables injection.
func (c *Cluster) InjectTaskFailures(rate float64, seed uint64) {
	if rate < 0 || rate >= 1 {
		panic("cluster: failure rate must be in [0, 1)")
	}
	c.mu.Lock()
	c.failRate = rate
	c.failSeed = seed
	c.mu.Unlock()
}

// ChargeBroadcast charges the cost of distributing `bytes` of driver state
// to every node (torrent-style: pipelined over log2(nodes) rounds).
func (c *Cluster) ChargeBroadcast(bytes float64) {
	rounds := 1.0
	for n := 1; n < c.Nodes; n *= 2 {
		rounds++
	}
	c.mu.Lock()
	t := bytes * rounds / c.Profile.NetBandwidth
	c.recordTrace("broadcast", false, c.simTime, t, c.Nodes, 0, 0, 0)
	c.simTime += t
	c.metrics.SimTime[c.phase] += t
	c.mu.Unlock()
}

// ChargeJobStartup charges the fixed cost of launching one Hadoop job.
func (c *Cluster) ChargeJobStartup() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recordTrace("job-startup", false, c.simTime, c.Profile.JobStartup, 0, 0, 0, 0)
	c.simTime += c.Profile.JobStartup
	c.metrics.SimTime[c.phase] += c.Profile.JobStartup
	c.metrics.Jobs++
}

// ChargeDriver charges driver-side compute (e.g. the R x R pseudo-inverse)
// that runs on a single core of the driver node.
func (c *Cluster) ChargeDriver(flops float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := flops / c.Profile.CoreFlops
	c.recordTrace("driver", false, c.simTime, t, 1, 0, 0, 0)
	c.simTime += t
	c.metrics.SimTime[c.phase] += t
	c.metrics.Flops[c.phase] += flops
}

// Parallel executes fn(0..n-1) on the host worker pool and waits for all of
// them. This is the *real* execution path: partition closures do the actual
// arithmetic here while RunStage separately charges modeled time.
func (c *Cluster) Parallel(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if cap(c.pool) == 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		tok := <-c.pool
		go func(i int, tok struct{}) {
			defer func() {
				c.pool <- tok
				wg.Done()
			}()
			fn(i)
		}(i, tok)
	}
	wg.Wait()
}
