package cluster

import (
	"fmt"
	"runtime"
	"sync"

	"cstf/internal/rng"
)

// Task describes the modeled cost of one task of a stage: where it runs and
// how much compute, shuffle I/O, and disk I/O it performs. The engines
// (internal/rdd, internal/mapreduce) build tasks; user code never does.
type Task struct {
	Node        int     // node the task executes on
	Flops       float64 // floating-point operations
	Records     float64 // records touched (per-record engine overhead)
	RemoteBytes float64 // shuffle bytes fetched from other nodes
	LocalBytes  float64 // shuffle bytes read from this node
	DiskBytes   float64 // HDFS bytes read or written
}

// Cluster is a simulated cluster of Nodes identical workers plus a driver.
// It executes real work on the host via Parallel and accounts modeled time
// and traffic via RunStage. A Cluster is safe for concurrent metric updates
// but stages themselves are issued sequentially by the engines, matching
// the synchronous stage execution of Spark jobs and Hadoop phases.
type Cluster struct {
	Nodes   int
	Profile Profile

	mu          sync.Mutex
	metrics     *Metrics
	phase       string
	cachedBytes []float64 // per node, currently persisted partition bytes
	simTime     float64
	workScale   float64 // variable-cost multiplier (see SetWorkScale)
	failRate    float64 // per-task failure probability (failure injection)
	failSeed    uint64
	stageSeq    uint64 // stage counter for deterministic failure draws
	tracing     bool
	trace       []TraceEvent

	injector      FaultInjector // scheduled faults (see fault.go), may be nil
	inFault       bool          // suppress fault delivery during recovery stages
	specThreshold float64       // speculative execution threshold (0 = off)
	crashFns      []func(node int)
	diskFns       []func(node int)
	abortErr      error // sticky job-abort error (*StageFailure, *DataLoss)

	pool chan struct{} // host-side worker tokens for Parallel
}

// New creates a simulated cluster with the given worker-node count.
func New(nodes int, p Profile) *Cluster {
	if nodes <= 0 {
		panic(fmt.Sprintf("cluster: invalid node count %d", nodes))
	}
	if p.CoresPerNode <= 0 {
		panic("cluster: profile needs at least one core per node")
	}
	w := runtime.GOMAXPROCS(0)
	c := &Cluster{
		Nodes:       nodes,
		Profile:     p,
		metrics:     newMetrics(),
		phase:       "Other",
		cachedBytes: make([]float64, nodes),
		workScale:   1,
		pool:        make(chan struct{}, w),
	}
	for i := 0; i < w; i++ {
		c.pool <- struct{}{}
	}
	return c
}

// SetWorkScale declares that the workload being executed is a 1/s-scale
// stand-in for the real one: all data-dependent costs (flops, records,
// bytes, cached memory) are multiplied by s when converting to modeled
// time, while fixed costs (stage scheduling latency, Hadoop job startup)
// stay as-is. Running a 1/1000-scale tensor with SetWorkScale(1000)
// therefore yields full-scale-equivalent runtimes with the correct
// fixed-vs-variable cost mix. Metrics (bytes, flops, records) remain RAW
// measured values of the scaled run; report-time extrapolation is the
// caller's choice.
func (c *Cluster) SetWorkScale(s float64) {
	if s <= 0 {
		panic("cluster: work scale must be positive")
	}
	c.mu.Lock()
	c.workScale = s
	c.mu.Unlock()
}

// NodeOf maps a partition index to the node hosting it (round-robin, the
// default Spark/Hadoop placement for evenly sized partition sets).
func (c *Cluster) NodeOf(partition int) int {
	if partition < 0 {
		panic("cluster: negative partition")
	}
	return partition % c.Nodes
}

// SetPhase labels all subsequent accounting (e.g. "MTTKRP-2"). Figure 4's
// per-mode breakdown is produced by switching phases around each MTTKRP.
func (c *Cluster) SetPhase(name string) {
	c.mu.Lock()
	c.phase = name
	c.mu.Unlock()
}

// Phase returns the current accounting label.
func (c *Cluster) Phase() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.phase
}

// Metrics returns a snapshot of the accumulated metrics.
func (c *Cluster) Metrics() *Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.metrics.Clone()
}

// SimTime returns the modeled seconds elapsed so far.
func (c *Cluster) SimTime() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.simTime
}

// ResetMetrics zeroes the metrics and the simulated clock (cache occupancy
// is preserved: persisted RDDs survive a measurement-window reset).
func (c *Cluster) ResetMetrics() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics = newMetrics()
	c.simTime = 0
}

// AddCached charges wire bytes of raw-cached data on the node hosting the
// given partition; Unpersist is AddCached with a negative size. The
// profile's RawCacheFactor converts wire size to deserialized JVM object
// size, and the result feeds the GC-pressure term of the cost model.
func (c *Cluster) AddCached(partition int, bytes float64) {
	f := c.Profile.RawCacheFactor
	if f <= 0 {
		f = 1
	}
	c.addCachedEffective(partition, bytes*f)
}

// AddCachedSerialized charges bytes cached at the serialized storage level:
// the footprint is the wire size itself (no object expansion), trading
// memory for per-read decode cost (Profile.DeserFactor).
func (c *Cluster) AddCachedSerialized(partition int, bytes float64) {
	c.addCachedEffective(partition, bytes)
}

func (c *Cluster) addCachedEffective(partition int, bytes float64) {
	n := c.NodeOf(partition)
	c.mu.Lock()
	c.cachedBytes[n] += bytes
	if c.cachedBytes[n] < 0 {
		c.cachedBytes[n] = 0
	}
	c.mu.Unlock()
}

// CachedBytes returns the total bytes currently persisted across the cluster.
func (c *Cluster) CachedBytes() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var s float64
	for _, v := range c.cachedBytes {
		s += v
	}
	return s
}

// RunStage charges the modeled execution of one stage consisting of the
// given tasks. wide marks a stage that begins with a shuffle read: it pays
// driver scheduling latency and increments the shuffle counter. The model:
//
//	gc(n)     = 1 + GCCoeff * cached(n) / NodeMemory
//	busy(n)   = (flops/CoreFlops + records*RecordCost) / Cores * gc(n)
//	          + remote/NetBandwidth + local/LocalBW + disk/DiskBW
//	          + TaskOverhead * ceil(tasks(n)/Cores)
//	stageTime = max_n busy(n) + [wide] (SchedBase + SchedPerNode*Nodes)
//
// Fault handling: scheduled faults (SetFaultInjector) are delivered at the
// stage boundary before accounting begins; per-node slowdowns and network
// degradation from the injector apply to the stage's busy times; and if a
// task exhausts its retry budget the whole stage is re-executed up to
// maxStageAttempts times (each failed attempt paying its cost plus
// Profile.StageRetryBackoff) before the job aborts with a *StageFailure.
func (c *Cluster) RunStage(wide bool, tasks []Task) {
	c.deliverFaults()
	p := c.Profile
	acc := make([]nodeAcc, c.Nodes)
	var flopsTot, recTot, remoteTot, localTot, diskTot float64
	for _, t := range tasks {
		if t.Node < 0 || t.Node >= c.Nodes {
			panic(fmt.Sprintf("cluster: task on node %d of %d", t.Node, c.Nodes))
		}
		a := &acc[t.Node]
		a.flops += t.Flops
		a.records += t.Records
		a.remote += t.RemoteBytes
		a.local += t.LocalBytes
		a.disk += t.DiskBytes
		a.tasks++
		flopsTot += t.Flops
		recTot += t.Records
		remoteTot += t.RemoteBytes
		localTot += t.LocalBytes
		diskTot += t.DiskBytes
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.stageSeq++

	slow, netFactor := []float64(nil), 1.0
	if c.injector != nil {
		slow, netFactor = c.injector.StageConditions(c.stageSeq, c.Nodes)
		if netFactor <= 0 || netFactor > 1 {
			netFactor = 1
		}
		anySlow := false
		for _, s := range slow {
			if s > 1 {
				anySlow = true
				break
			}
		}
		if anySlow {
			c.metrics.StragglerStages++
			c.recordTrace("straggler", false, c.simTime, 0, len(tasks), 0, 0, 0)
		}
		if netFactor < 1 {
			c.recordTrace("net-degraded", false, c.simTime, 0, len(tasks), 0, 0, 0)
		}
	}

	var busy float64
	for sa := 0; sa < maxStageAttempts; sa++ {
		b, dead := c.runAttempt(sa, wide, tasks, acc, slow, netFactor)
		busy = b
		if !dead {
			break
		}
		c.metrics.StageRetries++
		if sa == maxStageAttempts-1 {
			// Out of stage attempts: the job aborts. The final attempt is
			// still charged below so the clock and trace stay consistent.
			if c.abortErr == nil {
				c.abortErr = &StageFailure{Stage: c.stageSeq, Phase: c.phase, Wide: wide}
			}
			break
		}
		d := b + p.StageRetryBackoff
		c.recordTrace("stage-retry", wide, c.simTime, d, len(tasks), 0, 0, 0)
		c.simTime += d
		c.metrics.SimTime[c.phase] += d
	}

	t := busy
	if wide {
		t += p.SchedBase + p.SchedPerNode*float64(c.Nodes)
		c.metrics.Shuffles[c.phase]++
	}
	c.recordTrace("stage", wide, c.simTime, t, len(tasks), recTot, remoteTot, localTot)
	c.simTime += t
	ph := c.phase
	c.metrics.SimTime[ph] += t
	c.metrics.RemoteBytes[ph] += remoteTot
	c.metrics.LocalBytes[ph] += localTot
	c.metrics.Flops[ph] += flopsTot
	c.metrics.Records[ph] += recTot
	c.metrics.DiskBytes[ph] += diskTot
	c.metrics.Stages++
	c.metrics.Tasks += len(tasks)
}

type nodeAcc struct {
	flops, records, remote, local, disk float64
	tasks                               int
}

// runAttempt prices one execution attempt of a stage: deterministic task
// retries (attempt sa uses rng keys sa*attemptStride+0..maxTaskRetries, so
// attempt 0 reproduces the historical draw sequence), injector slowdowns,
// network degradation, and speculative backups on straggling nodes. It
// returns the attempt's wall time and whether some task exhausted its retry
// cap, which forces a full stage re-execution. Caller holds c.mu.
func (c *Cluster) runAttempt(sa int, wide bool, tasks []Task, acc []nodeAcc, slow []float64, netFactor float64) (float64, bool) {
	p := c.Profile
	var ext []nodeAcc // retry surcharge per node
	deadTask := false
	if c.failRate > 0 {
		ext = make([]nodeAcc, c.Nodes)
		// Attempt a of task t fails while U(seed, stage, t, key(a)) < rate;
		// each failed attempt re-pays the task's cost, and a task that fails
		// maxTaskRetries+1 times in a row kills this stage attempt.
		for ti := range tasks {
			t := &tasks[ti]
			retries := 0
			alive := false
			for a := 0; a <= maxTaskRetries; a++ {
				key := uint64(sa)*attemptStride + uint64(a)
				if rng.UniformAt(c.failSeed, c.stageSeq, uint64(ti), key) >= c.failRate {
					alive = true
					break
				}
				if retries < maxTaskRetries {
					retries++
				}
			}
			if retries > 0 {
				r := float64(retries)
				e := &ext[t.Node]
				e.flops += t.Flops * r
				e.records += t.Records * r
				e.remote += t.RemoteBytes * r
				e.local += t.LocalBytes * r
				e.disk += t.DiskBytes * r
				c.metrics.TaskFailures += retries
			}
			if !alive {
				deadTask = true
			}
		}
	}
	cores := float64(p.CoresPerNode)
	ws := c.workScale
	var maxBusy float64
	for n := 0; n < c.Nodes; n++ {
		a := acc[n]
		if ext != nil {
			e := ext[n]
			a.flops += e.flops
			a.records += e.records
			a.remote += e.remote
			a.local += e.local
			a.disk += e.disk
		}
		if a.tasks == 0 {
			continue
		}
		gc := 1 + p.GCCoeff*ws*c.cachedBytes[n]/p.NodeMemory
		healthy := ws * ((a.flops/p.CoreFlops+a.records*p.RecordCost)/cores*gc +
			a.remote/(p.NetBandwidth*netFactor) + a.local/p.LocalBW + a.disk/p.DiskBW)
		waves := (a.tasks + p.CoresPerNode - 1) / p.CoresPerNode
		healthy += p.TaskOverhead * float64(waves)
		busy := healthy
		if n < len(slow) && slow[n] > 1 {
			busy = healthy * slow[n]
			if c.specThreshold > 0 && slow[n] >= c.specThreshold {
				// Speculative copies on healthy resources finish after the
				// launch delay plus a healthy execution; the stage takes
				// whichever finishes first.
				if spec := healthy + p.SpecLaunchDelay; spec < busy {
					busy = spec
					c.metrics.SpeculativeTasks += a.tasks
				}
			}
		}
		if busy > maxBusy {
			maxBusy = busy
		}
	}
	return maxBusy, deadTask
}

// InjectTaskFailures makes every task fail independently with the given
// probability; failed tasks are retried up to maxTaskRetries times,
// re-paying their cost each attempt, the way Spark and Hadoop recover from
// lost executors. A task that fails every retry kills its stage attempt,
// triggering bounded stage re-execution and eventually a job abort (Err).
// Rate 0 disables injection; rates outside [0, 1) return an error.
//
// Determinism contract: whether attempt a of task index t in stage s fails
// is rng.UniformAt(seed, s, t, key(a)) < rate, where s is the cluster's
// stage-sequence counter (incremented once per RunStage, in driver issue
// order) and key(a) spaces stage re-execution attempts apart. The draw
// depends only on (seed, stage order, task index), never on wall time,
// goroutine interleaving, or host parallelism, so a failure schedule
// replays bitwise-identically across runs.
func (c *Cluster) InjectTaskFailures(rate float64, seed uint64) error {
	if rate < 0 || rate >= 1 {
		return fmt.Errorf("cluster: failure rate must be in [0, 1), got %g", rate)
	}
	c.mu.Lock()
	c.failRate = rate
	c.failSeed = seed
	c.mu.Unlock()
	return nil
}

// ChargeBroadcast charges the cost of distributing `bytes` of driver state
// to every node (torrent-style: pipelined over log2(nodes) rounds).
func (c *Cluster) ChargeBroadcast(bytes float64) {
	rounds := 1.0
	for n := 1; n < c.Nodes; n *= 2 {
		rounds++
	}
	c.mu.Lock()
	t := bytes * rounds / c.Profile.NetBandwidth
	c.recordTrace("broadcast", false, c.simTime, t, c.Nodes, 0, 0, 0)
	c.simTime += t
	c.metrics.SimTime[c.phase] += t
	c.mu.Unlock()
}

// ChargeJobStartup charges the fixed cost of launching one Hadoop job.
func (c *Cluster) ChargeJobStartup() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recordTrace("job-startup", false, c.simTime, c.Profile.JobStartup, 0, 0, 0, 0)
	c.simTime += c.Profile.JobStartup
	c.metrics.SimTime[c.phase] += c.Profile.JobStartup
	c.metrics.Jobs++
}

// ChargeDriver charges driver-side compute (e.g. the R x R pseudo-inverse)
// that runs on a single core of the driver node.
func (c *Cluster) ChargeDriver(flops float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := flops / c.Profile.CoreFlops
	c.recordTrace("driver", false, c.simTime, t, 1, 0, 0, 0)
	c.simTime += t
	c.metrics.SimTime[c.phase] += t
	c.metrics.Flops[c.phase] += flops
}

// Parallel executes fn(0..n-1) on the host worker pool and waits for all of
// them. This is the *real* execution path: partition closures do the actual
// arithmetic here while RunStage separately charges modeled time.
func (c *Cluster) Parallel(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if cap(c.pool) == 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		tok := <-c.pool
		go func(i int, tok struct{}) {
			defer func() {
				c.pool <- tok
				wg.Done()
			}()
			fn(i)
		}(i, tok)
	}
	wg.Wait()
}
