package cluster

import (
	"bytes"
	"encoding/json"
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, ...) must panic")
		}
	}()
	New(0, LaptopProfile())
}

func TestNodeOfRoundRobin(t *testing.T) {
	c := New(4, LaptopProfile())
	for p := 0; p < 16; p++ {
		if c.NodeOf(p) != p%4 {
			t.Fatalf("NodeOf(%d) = %d", p, c.NodeOf(p))
		}
	}
}

func TestRunStageAccounting(t *testing.T) {
	c := New(2, LaptopProfile())
	c.SetPhase("MTTKRP-1")
	c.RunStage(true, []Task{
		{Node: 0, Flops: 1e6, Records: 100, RemoteBytes: 1e6, LocalBytes: 2e6},
		{Node: 1, Flops: 2e6, Records: 200, RemoteBytes: 3e6},
	})
	m := c.Metrics()
	if m.RemoteBytes["MTTKRP-1"] != 4e6 {
		t.Fatalf("remote bytes %v", m.RemoteBytes)
	}
	if m.LocalBytes["MTTKRP-1"] != 2e6 {
		t.Fatalf("local bytes %v", m.LocalBytes)
	}
	if m.Shuffles["MTTKRP-1"] != 1 || m.Stages != 1 || m.Tasks != 2 {
		t.Fatalf("counters: %+v", m)
	}
	if m.Flops["MTTKRP-1"] != 3e6 {
		t.Fatalf("flops %v", m.Flops)
	}
	if c.SimTime() <= 0 {
		t.Fatal("sim time must advance")
	}
}

func TestNarrowStageHasNoShuffleOrLatency(t *testing.T) {
	p := LaptopProfile()
	cNarrow := New(4, p)
	cWide := New(4, p)
	task := []Task{{Node: 0, Flops: 1e6, Records: 10}}
	cNarrow.RunStage(false, task)
	cWide.RunStage(true, task)
	if cNarrow.Metrics().TotalShuffles() != 0 {
		t.Fatal("narrow stage must not count a shuffle")
	}
	if cWide.SimTime()-cNarrow.SimTime() < p.SchedBase {
		t.Fatal("wide stage must pay scheduler latency")
	}
}

func TestMoreNodesReduceComputeTime(t *testing.T) {
	p := LaptopProfile()
	mkTasks := func(nodes int) []Task {
		tasks := make([]Task, 64)
		for i := range tasks {
			tasks[i] = Task{Node: i % nodes, Flops: 1e9, Records: 1e5}
		}
		return tasks
	}
	c4 := New(4, p)
	c4.RunStage(false, mkTasks(4))
	c16 := New(16, p)
	c16.RunStage(false, mkTasks(16))
	if c16.SimTime() >= c4.SimTime() {
		t.Fatalf("16 nodes (%v s) should beat 4 nodes (%v s) on compute", c16.SimTime(), c4.SimTime())
	}
}

func TestSchedLatencyGrowsWithNodes(t *testing.T) {
	p := LaptopProfile()
	small := New(4, p)
	big := New(32, p)
	empty := []Task{{Node: 0}}
	small.RunStage(true, empty)
	big.RunStage(true, empty)
	if big.SimTime() <= small.SimTime() {
		t.Fatal("per-stage latency must grow with cluster size")
	}
}

func TestGCPressureSlowsCompute(t *testing.T) {
	p := LaptopProfile()
	cold := New(2, p)
	hot := New(2, p)
	hot.AddCached(0, 0.8*p.NodeMemory)
	task := []Task{{Node: 0, Flops: 1e10}}
	cold.RunStage(false, task)
	hot.RunStage(false, task)
	if hot.SimTime() <= cold.SimTime() {
		t.Fatal("cached bytes must add GC pressure to compute time")
	}
}

func TestAddCachedClampsAtZero(t *testing.T) {
	c := New(2, LaptopProfile())
	c.AddCached(0, 100)
	c.AddCached(0, -500)
	if c.CachedBytes() != 0 {
		t.Fatalf("cached bytes should clamp at 0, got %v", c.CachedBytes())
	}
}

func TestResetMetricsKeepsCache(t *testing.T) {
	c := New(2, LaptopProfile())
	c.AddCached(0, 42)
	c.RunStage(true, []Task{{Node: 0, RemoteBytes: 10}})
	c.ResetMetrics()
	if c.SimTime() != 0 || c.Metrics().TotalRemoteBytes() != 0 {
		t.Fatal("reset must zero metrics")
	}
	if c.CachedBytes() != 42*c.Profile.RawCacheFactor {
		t.Fatal("reset must not evict the cache")
	}
}

func TestChargeJobStartupAndDriver(t *testing.T) {
	p := LaptopProfile()
	c := New(2, p)
	c.ChargeJobStartup()
	if c.Metrics().Jobs != 1 || c.SimTime() != p.JobStartup {
		t.Fatal("job startup accounting wrong")
	}
	before := c.SimTime()
	c.ChargeDriver(p.CoreFlops) // exactly one second of driver time
	if math.Abs(c.SimTime()-before-1) > 1e-9 {
		t.Fatalf("driver charge wrong: %v", c.SimTime()-before)
	}
}

func TestParallelRunsAllAndIsReentrantSafe(t *testing.T) {
	c := New(4, LaptopProfile())
	var count int64
	c.Parallel(100, func(i int) {
		atomic.AddInt64(&count, int64(i))
	})
	if count != 4950 {
		t.Fatalf("sum of indices = %d, want 4950", count)
	}
	c.Parallel(0, func(int) { t.Error("must not call fn for n=0") })
}

func TestMetricsSubAndClone(t *testing.T) {
	c := New(2, LaptopProfile())
	c.SetPhase("a")
	c.RunStage(true, []Task{{Node: 0, RemoteBytes: 100, LocalBytes: 50, Flops: 10, Records: 5}})
	snap := c.Metrics()
	c.RunStage(true, []Task{{Node: 1, RemoteBytes: 30, DiskBytes: 7}})
	diff := c.Metrics().Sub(snap)
	if diff.RemoteBytes["a"] != 30 || diff.Shuffles["a"] != 1 || diff.Stages != 1 {
		t.Fatalf("sub: %+v", diff)
	}
	if diff.DiskBytes["a"] != 7 {
		t.Fatalf("disk sub: %v", diff.DiskBytes)
	}
	// Clone isolation.
	snap2 := c.Metrics()
	snap2.RemoteBytes["a"] = -1
	if c.Metrics().RemoteBytes["a"] == -1 {
		t.Fatal("Metrics() must return an isolated copy")
	}
}

func TestPhasesSorted(t *testing.T) {
	c := New(2, LaptopProfile())
	for _, ph := range []string{"z", "a", "m"} {
		c.SetPhase(ph)
		c.RunStage(false, []Task{{Node: 0, Flops: 1}})
	}
	got := c.Metrics().Phases()
	if len(got) != 3 || got[0] != "a" || got[1] != "m" || got[2] != "z" {
		t.Fatalf("phases = %v", got)
	}
}

// Conservation: total sim time equals the sum over phases.
func TestSimTimeConservation(t *testing.T) {
	f := func(seed int64) bool {
		c := New(3, LaptopProfile())
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(uint64(s)>>40) / float64(1<<24)
		}
		for i := 0; i < 10; i++ {
			c.SetPhase([]string{"x", "y"}[i%2])
			c.RunStage(i%3 == 0, []Task{{Node: i % 3, Flops: next() * 1e9, RemoteBytes: next() * 1e6}})
		}
		return math.Abs(c.Metrics().TotalSimTime()-c.SimTime()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRunStagePanicsOnBadNode(t *testing.T) {
	c := New(2, LaptopProfile())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range node")
		}
	}()
	c.RunStage(false, []Task{{Node: 5}})
}

func TestChargeBroadcast(t *testing.T) {
	c := New(8, LaptopProfile())
	c.ChargeBroadcast(c.Profile.NetBandwidth) // 1 second per round
	// 8 nodes -> 1 + ceil(log2(8)) = 4 rounds.
	if got := c.SimTime(); got != 4 {
		t.Fatalf("broadcast time %v, want 4", got)
	}
}

func TestInjectTaskFailuresAddsTimeDeterministically(t *testing.T) {
	run := func(rate float64) float64 {
		c := New(4, LaptopProfile())
		c.InjectTaskFailures(rate, 77)
		for s := 0; s < 20; s++ {
			tasks := make([]Task, 16)
			for i := range tasks {
				tasks[i] = Task{Node: i % 4, Flops: 1e8, Records: 1e4}
			}
			c.RunStage(true, tasks)
		}
		return c.SimTime()
	}
	clean := run(0)
	faulty := run(0.2)
	if faulty <= clean {
		t.Fatalf("failures must add time: %v vs %v", faulty, clean)
	}
	if run(0.2) != faulty {
		t.Fatal("failure injection must be deterministic in the seed")
	}

	// Failure counter.
	c := New(2, LaptopProfile())
	c.InjectTaskFailures(0.5, 3)
	c.RunStage(false, []Task{{Node: 0, Records: 10}, {Node: 1, Records: 10}})
	if c.Metrics().TaskFailures == 0 {
		t.Fatal("expected some injected failures at rate 0.5")
	}
}

func TestInjectTaskFailuresValidation(t *testing.T) {
	c := New(2, LaptopProfile())
	for _, rate := range []float64{1.0, 1.5, -0.1} {
		if err := c.InjectTaskFailures(rate, 1); err == nil {
			t.Errorf("rate %g must be rejected", rate)
		}
	}
	// A rejected rate must not change the cluster's configuration.
	c.RunStage(false, []Task{{Node: 0, Records: 10}})
	if c.Metrics().TaskFailures != 0 {
		t.Fatal("rejected rate leaked into the cluster")
	}
	if err := c.InjectTaskFailures(0.5, 1); err != nil {
		t.Fatalf("valid rate rejected: %v", err)
	}
}

func TestTraceRecordsEventsAndExports(t *testing.T) {
	c := New(2, LaptopProfile())
	c.EnableTrace()
	c.SetPhase("MTTKRP-1")
	c.RunStage(true, []Task{{Node: 0, Records: 100, RemoteBytes: 50}})
	c.ChargeJobStartup()
	c.ChargeDriver(1e6)
	c.ChargeBroadcast(1e6)
	ev := c.Trace()
	if len(ev) != 4 {
		t.Fatalf("trace has %d events, want 4", len(ev))
	}
	if ev[0].Kind != "stage" || !ev[0].Wide || ev[0].Remote != 50 {
		t.Fatalf("stage event: %+v", ev[0])
	}
	// Events must tile the timeline: each starts where the previous ended.
	for i := 1; i < len(ev); i++ {
		if math.Abs(ev[i].Start-(ev[i-1].Start+ev[i-1].Dur)) > 1e-9 {
			t.Fatalf("event %d not contiguous: %+v after %+v", i, ev[i], ev[i-1])
		}
	}
	last := ev[len(ev)-1]
	if math.Abs(last.Start+last.Dur-c.SimTime()) > 1e-9 {
		t.Fatalf("trace end %v != sim time %v", last.Start+last.Dur, c.SimTime())
	}

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, ev); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(parsed) != 4 || parsed[0]["ph"] != "X" {
		t.Fatalf("chrome trace malformed: %v", parsed)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	c := New(2, LaptopProfile())
	c.RunStage(false, []Task{{Node: 0, Records: 1}})
	if len(c.Trace()) != 0 {
		t.Fatal("tracing must be opt-in")
	}
}
