package cluster

import (
	"encoding/json"
	"fmt"
	"io"
)

// Execution tracing: when enabled, every stage and job event is recorded
// with its modeled time span and traffic, and can be exported in the
// Chrome trace-event format (chrome://tracing, Perfetto) to inspect where
// a CP-ALS run spends its modeled time.

// TraceEvent is one recorded stage or job-level event.
type TraceEvent struct {
	Seq     uint64  // stage sequence number
	Phase   string  // metrics phase at execution time (MTTKRP-n, Other)
	Kind    string  // "stage", "job-startup", "driver", "broadcast"
	Wide    bool    // stage began with a shuffle read
	Start   float64 // modeled start time, seconds
	Dur     float64 // modeled duration, seconds
	Tasks   int
	Records float64
	Remote  float64 // remote shuffle bytes read
	Local   float64 // local shuffle bytes read
}

// EnableTrace starts recording trace events (idempotent).
func (c *Cluster) EnableTrace() {
	c.mu.Lock()
	c.tracing = true
	c.mu.Unlock()
}

// Trace returns a copy of the recorded events.
func (c *Cluster) Trace() []TraceEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TraceEvent, len(c.trace))
	copy(out, c.trace)
	return out
}

// recordTrace appends an event; callers hold c.mu.
func (c *Cluster) recordTrace(kind string, wide bool, start, dur float64, tasks int, records, remote, local float64) {
	if !c.tracing {
		return
	}
	c.trace = append(c.trace, TraceEvent{
		Seq:     c.stageSeq,
		Phase:   c.phase,
		Kind:    kind,
		Wide:    wide,
		Start:   start,
		Dur:     dur,
		Tasks:   tasks,
		Records: records,
		Remote:  remote,
		Local:   local,
	})
}

// chromeEvent is the trace-event-format record ("X" complete events).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace exports events as a Chrome trace-event JSON array.
// Phases map to thread lanes so MTTKRP modes stack visually.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	lanes := map[string]int{}
	var out []chromeEvent
	for _, e := range events {
		lane, ok := lanes[e.Phase]
		if !ok {
			lane = len(lanes) + 1
			lanes[e.Phase] = lane
		}
		kind := e.Kind
		if e.Wide {
			kind += "+shuffle"
		}
		out = append(out, chromeEvent{
			Name: fmt.Sprintf("%s #%d", kind, e.Seq),
			Cat:  e.Phase,
			Ph:   "X",
			Ts:   e.Start * 1e6,
			Dur:  e.Dur * 1e6,
			Pid:  1,
			Tid:  lane,
			Args: map[string]string{
				"phase":        e.Phase,
				"tasks":        fmt.Sprintf("%d", e.Tasks),
				"records":      fmt.Sprintf("%.0f", e.Records),
				"remote_bytes": fmt.Sprintf("%.0f", e.Remote),
				"local_bytes":  fmt.Sprintf("%.0f", e.Local),
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
