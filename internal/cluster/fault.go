package cluster

import "fmt"

// Fault injection: a FaultInjector schedules failures against the cluster's
// deterministic stage clock, and the cluster turns them into the recovery
// behaviour of the frameworks it simulates — lost executors (cached
// partitions dropped, listeners notified so engines can recompute or
// re-replicate), per-node stragglers, degraded networks, and bounded
// task/stage re-execution with a typed abort error once retries run out.
// Everything is keyed on (seed, stage sequence), so a fault schedule is
// bitwise reproducible regardless of host parallelism.

// Phase labels for fault-tolerance work, alongside the algorithm phases
// ("MTTKRP-n", "Other") the engines set.
const (
	// PhaseRecovery labels crash detection, lineage recomputation, and
	// HDFS re-replication time.
	PhaseRecovery = "Recovery"
	// PhaseCheckpoint labels checkpoint write/restore time.
	PhaseCheckpoint = "Checkpoint"
)

// FaultInjector supplies deterministic fault events keyed to the cluster's
// stage clock. Stage sequence numbers are assigned by the driver in issue
// order (stages execute synchronously), so the same plan replays identically
// across runs and host-parallelism settings.
type FaultInjector interface {
	// TakeFaults pops the permanent faults due at or before stage seq:
	// node crashes (the executor and its cached partitions are lost) and
	// disk failures (the node's HDFS block replicas are lost, the executor
	// survives). Each event must be delivered exactly once; the cluster
	// calls TakeFaults at every stage boundary with an increasing seq.
	TakeFaults(seq uint64) (crashedNodes, failedDisks []int)

	// StageConditions reports the transient conditions stage seq executes
	// under: per-node compute slowdown factors (nil, or length nodes with
	// 1 meaning healthy) and a network bandwidth multiplier in (0, 1]
	// (values <= 0 are treated as 1). Must be a pure function of
	// (seq, nodes) — it is consulted once per stage attempt.
	StageConditions(seq uint64, nodes int) (slowdown []float64, netFactor float64)
}

// Bounded re-execution, matching the Spark/Hadoop defaults of 3 retries
// per task and a handful of stage attempts before the job fails.
const (
	maxTaskRetries   = 3 // re-executions of one task within a stage attempt
	maxStageAttempts = 3 // full-stage re-executions before aborting
	// attemptStride spaces the rng keys of consecutive stage attempts so
	// task-failure draws never collide across attempts. Attempt 0 uses keys
	// 0..maxTaskRetries, reproducing the pre-fault-plan draw sequence.
	attemptStride = 16
)

// StageFailure is the typed error Err returns after a stage exhausted both
// the per-task retry cap and the bounded stage re-execution attempts.
type StageFailure struct {
	Stage uint64 // stage sequence number that failed
	Phase string // metrics phase at failure time
	Wide  bool   // the failed stage began with a shuffle read
}

func (e *StageFailure) Error() string {
	return fmt.Sprintf("cluster: stage %d (phase %s) failed after %d attempts of %d task retries each",
		e.Stage, e.Phase, maxStageAttempts, maxTaskRetries)
}

// DataLoss is the typed error Err returns when a fault destroyed state that
// has no surviving copy to recover from (e.g. an HDFS block with
// replication 1).
type DataLoss struct {
	Node   int
	Detail string
}

func (e *DataLoss) Error() string {
	return fmt.Sprintf("cluster: unrecoverable data loss on node %d: %s", e.Node, e.Detail)
}

// SetFaultInjector installs the fault schedule consulted at every stage
// boundary. Pass nil to remove it. Injected faults are deterministic: the
// injector sees only the stage clock, never wall time or goroutine order.
func (c *Cluster) SetFaultInjector(fi FaultInjector) {
	c.mu.Lock()
	c.injector = fi
	c.mu.Unlock()
}

// EnableSpeculation turns on speculative execution: when a stage runs on a
// node whose slowdown factor is at least `threshold` (> 1), the scheduler
// launches backup copies of its tasks on healthy resources after
// Profile.SpecLaunchDelay, and the stage finishes with whichever copy is
// first — Spark's spark.speculation / Hadoop's speculative execution.
// threshold <= 0 disables it.
func (c *Cluster) EnableSpeculation(threshold float64) {
	c.mu.Lock()
	c.specThreshold = threshold
	c.mu.Unlock()
}

// OnNodeCrash registers a listener invoked when a node crash is delivered.
// Engines use it to drop lost partitions (rdd) or re-replicate HDFS blocks
// (mapreduce). Listeners run at a stage boundary and may issue recovery
// stages themselves; fault delivery is suppressed while they run.
func (c *Cluster) OnNodeCrash(fn func(node int)) {
	c.mu.Lock()
	c.crashFns = append(c.crashFns, fn)
	c.mu.Unlock()
}

// OnDiskFailure registers a listener for disk-failure faults (HDFS block
// replicas on the node are lost; the executor survives).
func (c *Cluster) OnDiskFailure(fn func(node int)) {
	c.mu.Lock()
	c.diskFns = append(c.diskFns, fn)
	c.mu.Unlock()
}

// Err returns the sticky abort error (a *StageFailure or *DataLoss), or nil.
// Engines check it between stages/iterations; the cluster itself keeps
// accounting after an abort so metrics stay consistent.
func (c *Cluster) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.abortErr
}

// Fail records an unrecoverable error (first one wins). Engines call it
// when recovery is impossible, e.g. data loss with no surviving replica.
func (c *Cluster) Fail(err error) {
	c.mu.Lock()
	if c.abortErr == nil {
		c.abortErr = err
	}
	c.mu.Unlock()
}

// NoteRecomputed counts partitions rebuilt from lineage (rdd recovery).
func (c *Cluster) NoteRecomputed(partitions int) {
	c.mu.Lock()
	c.metrics.RecomputedPartitions += partitions
	c.mu.Unlock()
}

// NoteReReplicated counts HDFS bytes copied to restore replication after a
// crash or disk failure (mapreduce recovery).
func (c *Cluster) NoteReReplicated(bytes float64) {
	c.mu.Lock()
	c.metrics.ReReplicatedBytes += bytes
	c.mu.Unlock()
}

// ChargeCheckpointWrite models writing `bytes` of driver state (e.g. the
// collected factor matrices) to replicated HDFS under the Checkpoint phase:
// one stage with the bytes spread evenly across the nodes, each share paying
// the profile's replication factor in disk traffic.
func (c *Cluster) ChargeCheckpointWrite(bytes float64) {
	rep := float64(c.Profile.HDFSReplication)
	if rep < 1 {
		rep = 1
	}
	tasks := make([]Task, c.Nodes)
	share := bytes / float64(c.Nodes)
	for n := range tasks {
		tasks[n] = Task{Node: n, DiskBytes: share * rep}
	}
	old := c.Phase()
	c.SetPhase(PhaseCheckpoint)
	c.RunStage(false, tasks)
	c.SetPhase(old)
}

// deliverFaults pops the injector's permanent faults due at the next stage
// and applies them: a crashed node loses its executor (cached bytes are
// dropped, LostCacheBytes/NodeCrashes counted, the profile's RecoveryDelay
// charged while the replacement registers), then listeners run so engines
// can mark lost partitions or re-replicate blocks. Listeners may execute
// recovery stages; re-entrant delivery is suppressed so those stages cannot
// recursively pop faults.
func (c *Cluster) deliverFaults() {
	c.mu.Lock()
	if c.injector == nil || c.inFault {
		c.mu.Unlock()
		return
	}
	crashes, disks := c.injector.TakeFaults(c.stageSeq + 1)
	crashes = c.validNodes(crashes)
	disks = c.validNodes(disks)
	if len(crashes) == 0 && len(disks) == 0 {
		c.mu.Unlock()
		return
	}
	c.inFault = true
	for _, n := range crashes {
		lost := c.cachedBytes[n]
		c.cachedBytes[n] = 0
		c.metrics.NodeCrashes++
		c.metrics.LostCacheBytes += lost
		d := c.Profile.RecoveryDelay
		c.recordTrace("node-crash", false, c.simTime, d, 0, 0, 0, 0)
		c.simTime += d
		c.metrics.SimTime[PhaseRecovery] += d
	}
	for range disks {
		c.metrics.DiskFailures++
		c.recordTrace("disk-failure", false, c.simTime, 0, 0, 0, 0, 0)
	}
	crashFns := append([]func(int){}, c.crashFns...)
	diskFns := append([]func(int){}, c.diskFns...)
	c.mu.Unlock()

	for _, n := range crashes {
		for _, fn := range crashFns {
			fn(n)
		}
	}
	for _, n := range disks {
		for _, fn := range diskFns {
			fn(n)
		}
	}

	c.mu.Lock()
	c.inFault = false
	c.mu.Unlock()
}

// validNodes drops out-of-range node indices from an injector's event list.
func (c *Cluster) validNodes(nodes []int) []int {
	out := nodes[:0]
	for _, n := range nodes {
		if n >= 0 && n < c.Nodes {
			out = append(out, n)
		}
	}
	return out
}
