// Package cluster simulates the distributed platform the paper runs on: a
// Comet-like cluster of worker nodes executing Spark or Hadoop stages. All
// numerics are computed for real on the host (partition tasks run on a
// goroutine pool), while *time* is charged through a deterministic cost
// model so that experiments can report per-iteration runtimes for 4-32
// simulated nodes on a single machine. The model captures exactly the
// effects the paper's analysis (Section 5) attributes performance to:
// number of shuffles, shuffled bytes (remote vs local), floating-point
// work, per-record engine overhead, caching pressure, and the fixed
// per-stage/per-job costs of Spark and Hadoop.
package cluster

// Profile holds the calibrated cost-model constants for a cluster node and
// the frameworks running on it. One profile (CometProfile) is shared by
// every experiment in this repository; experiments vary only the node
// count, never the constants.
type Profile struct {
	// Hardware-ish parameters (per node).
	CoresPerNode int     // execution slots per node
	CoreFlops    float64 // useful double-precision flops/s per core under the JVM
	NetBandwidth float64 // effective shuffle-fetch bandwidth per node, bytes/s
	LocalBW      float64 // local shuffle read bandwidth (page cache / SSD), bytes/s
	DiskBW       float64 // HDFS disk bandwidth, bytes/s
	NodeMemory   float64 // executor memory per node, bytes

	// Engine parameters.
	RecordCost     float64 // seconds of CPU per record touched by an engine operator
	RecordOverhead int     // serialization overhead bytes added per shuffled record
	SchedBase      float64 // seconds of driver latency per (wide) stage
	SchedPerNode   float64 // additional per-node driver latency per stage
	TaskOverhead   float64 // seconds per task-launch wave on a node
	GCCoeff        float64 // compute slowdown per (cached bytes / executor memory)
	RawCacheFactor float64 // in-memory (raw, deserialized) object size per wire byte
	DeserFactor    float64 // per-record cost multiplier when reading a serialized cache

	// Hadoop-specific parameters (used by the mapreduce engine only).
	JobStartup         float64 // seconds to launch one MapReduce job
	HDFSReplication    int     // write replication factor
	HadoopRecordFactor float64 // per-record cost multiplier vs the Spark engine

	// Fault-tolerance parameters (see fault.go).
	RecoveryDelay     float64 // seconds to detect a dead node + register a replacement executor
	StageRetryBackoff float64 // scheduler backoff before re-executing a failed stage
	SpecLaunchDelay   float64 // delay before speculative task copies launch
}

// CometProfile models one node of the SDSC Comet cluster (2x12-core Xeon
// E5-2680v3, 128 GB RAM, 320 GB local SSD scratch) running Spark 1.5.2 /
// Hadoop 2.6, as used in Section 6.1 of the paper.
//
// The constants are calibrated, not measured: they were fixed once so that
// the regenerated Figure 2 and Figure 5 land inside the paper's reported
// speedup bands, then frozen. internal/experiments asserts those bands in
// tests, so accidental changes here fail CI.
func CometProfile() Profile {
	return Profile{
		CoresPerNode: 24,
		// Effective per-core throughput for JVM vector arithmetic on
		// boxed/deserialized rows; far below peak silicon on purpose.
		CoreFlops:    180e6,
		NetBandwidth: 280e6, // effective Spark 1.5 shuffle fetch rate per node
		LocalBW:      900e6, // local shuffle reads hit SSD/page cache
		DiskBW:       190e6, // HDFS on spinning-ish scratch, per node
		// Executor memory available to the RDD storage fraction: the nodes
		// have 128 GB, but a Spark 1.5 executor heap with the default
		// storage fraction leaves roughly this much for cached partitions;
		// the GC-pressure term is measured against it.
		NodeMemory: 20e9,

		RecordCost:     4.4e-6, // iterator chains, hashing, (de)serialization
		RecordOverhead: 96,     // Java serialization: headers, class descriptors
		SchedBase:      1.8,    // stage launch + straggler tail at fixed size
		SchedPerNode:   0.125,  // driver coordination growing with cluster size
		TaskOverhead:   0.004,
		GCCoeff:        2.0,
		RawCacheFactor: 3.5, // deserialized JVM objects vs wire size (raw caching)
		DeserFactor:    4.0, // decode cost of reading serialized cached partitions

		JobStartup:         21.0, // YARN container spin-up + job setup/teardown
		HDFSReplication:    3,
		HadoopRecordFactor: 2.8, // Writable/Text record handling vs Spark iterators

		// Spark 1.5 / YARN defaults: executor heartbeat timeout plus
		// container re-registration dominates crash detection; stage resubmit
		// and speculation waits are scheduler-tick scale.
		RecoveryDelay:     12.0,
		StageRetryBackoff: 3.0,
		SpecLaunchDelay:   2.0,
	}
}

// LaptopProfile is a small, fast profile used by unit tests: identical
// structure, cheaper constants, so tests exercise every code path without
// caring about calibration.
func LaptopProfile() Profile {
	p := CometProfile()
	p.CoresPerNode = 4
	p.JobStartup = 1
	p.SchedBase = 0.05
	p.SchedPerNode = 0.01
	p.RecoveryDelay = 0.5
	p.StageRetryBackoff = 0.1
	p.SpecLaunchDelay = 0.05
	return p
}
