package cluster

import "sort"

// Metrics mirrors the Spark metrics-collection service the paper uses in
// Section 6.5: remote and local shuffle bytes read, plus counters for
// shuffles, stages, tasks, records, and floating-point work. Everything is
// keyed by a caller-supplied phase label (e.g. "MTTKRP-1") so Figure 4's
// stacked per-mode breakdown can be regenerated.
type Metrics struct {
	RemoteBytes  map[string]float64 // shuffle bytes read from remote nodes, by phase
	LocalBytes   map[string]float64 // shuffle bytes read from the local node, by phase
	Shuffles     map[string]int     // shuffle operations, by phase
	Flops        map[string]float64 // floating-point operations charged, by phase
	Records      map[string]float64 // records processed, by phase
	SimTime      map[string]float64 // modeled seconds, by phase
	DiskBytes    map[string]float64 // HDFS bytes read+written, by phase
	Stages       int
	Tasks        int
	Jobs         int // Hadoop jobs launched
	TaskFailures int // injected task failures that were retried

	// Fault-tolerance counters (see fault.go).
	StageRetries         int     // full-stage re-executions after a task died
	NodeCrashes          int     // node-crash faults delivered
	DiskFailures         int     // disk-failure faults delivered
	StragglerStages      int     // stages that ran with a straggling node
	SpeculativeTasks     int     // tasks rescued by speculative execution
	RecomputedPartitions int     // partitions rebuilt from lineage
	LostCacheBytes       float64 // cached bytes destroyed by node crashes
	ReReplicatedBytes    float64 // HDFS bytes copied to restore replication
}

func newMetrics() *Metrics {
	return &Metrics{
		RemoteBytes: map[string]float64{},
		LocalBytes:  map[string]float64{},
		Shuffles:    map[string]int{},
		Flops:       map[string]float64{},
		Records:     map[string]float64{},
		SimTime:     map[string]float64{},
		DiskBytes:   map[string]float64{},
	}
}

func sumF(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}

func sumI(m map[string]int) int {
	var s int
	for _, v := range m {
		s += v
	}
	return s
}

// TotalRemoteBytes returns remote shuffle bytes read across all phases.
func (m *Metrics) TotalRemoteBytes() float64 { return sumF(m.RemoteBytes) }

// TotalLocalBytes returns local shuffle bytes read across all phases.
func (m *Metrics) TotalLocalBytes() float64 { return sumF(m.LocalBytes) }

// TotalShuffles returns the number of shuffle operations across all phases.
func (m *Metrics) TotalShuffles() int { return sumI(m.Shuffles) }

// TotalFlops returns the floating-point operations charged across phases.
func (m *Metrics) TotalFlops() float64 { return sumF(m.Flops) }

// TotalSimTime returns the modeled seconds across all phases.
func (m *Metrics) TotalSimTime() float64 { return sumF(m.SimTime) }

// Phases returns the phase labels seen so far, sorted for stable output.
func (m *Metrics) Phases() []string {
	seen := map[string]bool{}
	for _, mm := range []map[string]float64{m.RemoteBytes, m.LocalBytes, m.Flops, m.SimTime} {
		for k := range mm {
			seen[k] = true
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the metrics.
func (m *Metrics) Clone() *Metrics {
	c := newMetrics()
	for k, v := range m.RemoteBytes {
		c.RemoteBytes[k] = v
	}
	for k, v := range m.LocalBytes {
		c.LocalBytes[k] = v
	}
	for k, v := range m.Shuffles {
		c.Shuffles[k] = v
	}
	for k, v := range m.Flops {
		c.Flops[k] = v
	}
	for k, v := range m.Records {
		c.Records[k] = v
	}
	for k, v := range m.SimTime {
		c.SimTime[k] = v
	}
	for k, v := range m.DiskBytes {
		c.DiskBytes[k] = v
	}
	c.Stages, c.Tasks, c.Jobs = m.Stages, m.Tasks, m.Jobs
	c.TaskFailures = m.TaskFailures
	c.StageRetries = m.StageRetries
	c.NodeCrashes = m.NodeCrashes
	c.DiskFailures = m.DiskFailures
	c.StragglerStages = m.StragglerStages
	c.SpeculativeTasks = m.SpeculativeTasks
	c.RecomputedPartitions = m.RecomputedPartitions
	c.LostCacheBytes = m.LostCacheBytes
	c.ReReplicatedBytes = m.ReReplicatedBytes
	return c
}

// Sub returns m - other, field-wise; used to measure a window (e.g. one
// CP-ALS iteration) by snapshotting before and after.
func (m *Metrics) Sub(other *Metrics) *Metrics {
	d := m.Clone()
	for k, v := range other.RemoteBytes {
		d.RemoteBytes[k] -= v
	}
	for k, v := range other.LocalBytes {
		d.LocalBytes[k] -= v
	}
	for k, v := range other.Shuffles {
		d.Shuffles[k] -= v
	}
	for k, v := range other.Flops {
		d.Flops[k] -= v
	}
	for k, v := range other.Records {
		d.Records[k] -= v
	}
	for k, v := range other.SimTime {
		d.SimTime[k] -= v
	}
	for k, v := range other.DiskBytes {
		d.DiskBytes[k] -= v
	}
	d.Stages -= other.Stages
	d.Tasks -= other.Tasks
	d.Jobs -= other.Jobs
	d.TaskFailures -= other.TaskFailures
	d.StageRetries -= other.StageRetries
	d.NodeCrashes -= other.NodeCrashes
	d.DiskFailures -= other.DiskFailures
	d.StragglerStages -= other.StragglerStages
	d.SpeculativeTasks -= other.SpeculativeTasks
	d.RecomputedPartitions -= other.RecomputedPartitions
	d.LostCacheBytes -= other.LostCacheBytes
	d.ReReplicatedBytes -= other.ReReplicatedBytes
	return d
}
