package cluster

import (
	"errors"
	"math"
	"testing"
)

// stubInjector is a minimal FaultInjector for cluster-level tests.
type stubInjector struct {
	crashAt   map[uint64][]int // stage -> nodes to crash
	disksAt   map[uint64][]int
	slow      map[uint64][]float64
	net       map[uint64]float64
	delivered map[uint64]bool
}

func (s *stubInjector) TakeFaults(seq uint64) ([]int, []int) {
	if s.delivered == nil {
		s.delivered = map[uint64]bool{}
	}
	var cr, dk []int
	for at, nodes := range s.crashAt {
		if at <= seq && !s.delivered[at] {
			s.delivered[at] = true
			cr = append(cr, nodes...)
		}
	}
	for at, nodes := range s.disksAt {
		if at <= seq && !s.delivered[1<<32+at] {
			s.delivered[1<<32+at] = true
			dk = append(dk, nodes...)
		}
	}
	return cr, dk
}

func (s *stubInjector) StageConditions(seq uint64, nodes int) ([]float64, float64) {
	net := 1.0
	if v, ok := s.net[seq]; ok {
		net = v
	}
	return s.slow[seq], net
}

func runNarrowStage(c *Cluster, tasks int) {
	ts := make([]Task, tasks)
	for i := range ts {
		ts[i] = Task{Node: i % c.Nodes, Flops: 1e8, Records: 1e4, RemoteBytes: 1e6}
	}
	c.RunStage(false, ts)
}

func TestNodeCrashDropsCacheAndNotifies(t *testing.T) {
	c := New(4, LaptopProfile())
	c.EnableTrace()
	var crashed []int
	c.OnNodeCrash(func(n int) { crashed = append(crashed, n) })
	c.AddCached(1, 1000) // partition 1 -> node 1
	c.AddCached(2, 500)  // node 2
	before := c.CachedBytes()

	c.SetFaultInjector(&stubInjector{crashAt: map[uint64][]int{2: {1}}})
	runNarrowStage(c, 4) // stage 1: no fault
	if len(crashed) != 0 {
		t.Fatalf("crash delivered early: %v", crashed)
	}
	runNarrowStage(c, 4) // stage 2: crash node 1
	if len(crashed) != 1 || crashed[0] != 1 {
		t.Fatalf("crash listener got %v, want [1]", crashed)
	}
	m := c.Metrics()
	if m.NodeCrashes != 1 {
		t.Fatalf("NodeCrashes = %d, want 1", m.NodeCrashes)
	}
	f := c.Profile.RawCacheFactor
	if math.Abs(m.LostCacheBytes-1000*f) > 1e-9 {
		t.Fatalf("LostCacheBytes = %v, want %v", m.LostCacheBytes, 1000*f)
	}
	if math.Abs(c.CachedBytes()-(before-1000*f)) > 1e-9 {
		t.Fatalf("cache after crash %v, want %v", c.CachedBytes(), before-1000*f)
	}
	if m.SimTime[PhaseRecovery] < c.Profile.RecoveryDelay {
		t.Fatalf("recovery delay not charged: %v", m.SimTime[PhaseRecovery])
	}

	// The crash shows up in the trace and the timeline stays contiguous.
	ev := c.Trace()
	found := false
	for _, e := range ev {
		if e.Kind == "node-crash" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no node-crash trace event in %+v", ev)
	}
	for i := 1; i < len(ev); i++ {
		if math.Abs(ev[i].Start-(ev[i-1].Start+ev[i-1].Dur)) > 1e-9 {
			t.Fatalf("trace not contiguous at %d: %+v after %+v", i, ev[i], ev[i-1])
		}
	}
}

func TestDiskFailureNotifiesWithoutCacheLoss(t *testing.T) {
	c := New(4, LaptopProfile())
	c.AddCached(1, 1000)
	before := c.CachedBytes()
	var disks []int
	c.OnDiskFailure(func(n int) { disks = append(disks, n) })
	c.SetFaultInjector(&stubInjector{disksAt: map[uint64][]int{1: {2}}})
	runNarrowStage(c, 4)
	if len(disks) != 1 || disks[0] != 2 {
		t.Fatalf("disk listener got %v, want [2]", disks)
	}
	if c.CachedBytes() != before {
		t.Fatal("disk failure must not drop executor cache")
	}
	if c.Metrics().DiskFailures != 1 {
		t.Fatal("DiskFailures not counted")
	}
}

func TestStragglerSlowsStageAndSpeculationBounds(t *testing.T) {
	run := func(slow []float64, specThreshold float64) (float64, *Metrics) {
		c := New(4, LaptopProfile())
		c.SetFaultInjector(&stubInjector{slow: map[uint64][]float64{1: slow}})
		if specThreshold > 0 {
			c.EnableSpeculation(specThreshold)
		}
		runNarrowStage(c, 8)
		return c.SimTime(), c.Metrics()
	}
	clean, _ := run(nil, 0)
	slowed, m := run([]float64{1, 8, 1, 1}, 0)
	if slowed <= clean {
		t.Fatalf("straggler must slow the stage: %v vs %v", slowed, clean)
	}
	if m.StragglerStages != 1 {
		t.Fatalf("StragglerStages = %d, want 1", m.StragglerStages)
	}
	spec, ms := run([]float64{1, 8, 1, 1}, 2)
	if spec >= slowed {
		t.Fatalf("speculation must beat the straggler: %v vs %v", spec, slowed)
	}
	if spec > clean+c4SpecDelay()+1e-9 {
		t.Fatalf("speculative stage %v exceeds healthy+delay %v", spec, clean+c4SpecDelay())
	}
	if ms.SpeculativeTasks == 0 {
		t.Fatal("SpeculativeTasks not counted")
	}
}

func c4SpecDelay() float64 { return LaptopProfile().SpecLaunchDelay }

func TestNetDegradationSlowsShuffleReads(t *testing.T) {
	run := func(net float64) float64 {
		c := New(4, LaptopProfile())
		c.SetFaultInjector(&stubInjector{net: map[uint64]float64{1: net}})
		runNarrowStage(c, 8)
		return c.SimTime()
	}
	if run(0.25) <= run(1.0) {
		t.Fatal("degraded network must slow stages with remote reads")
	}
}

func TestStageRetriesAndAbort(t *testing.T) {
	c := New(2, LaptopProfile())
	c.EnableTrace()
	if err := c.InjectTaskFailures(0.999, 12345); err != nil {
		t.Fatal(err)
	}
	// At rate 0.999 every draw fails with near certainty: each attempt's
	// task dies, the stage retries maxStageAttempts times, then aborts.
	c.RunStage(false, []Task{{Node: 0, Records: 100}})
	m := c.Metrics()
	if m.StageRetries == 0 {
		t.Fatal("expected stage retries at rate 0.999")
	}
	err := c.Err()
	if err == nil {
		t.Fatal("expected job abort")
	}
	var sf *StageFailure
	if !errors.As(err, &sf) {
		t.Fatalf("abort error is %T, want *StageFailure", err)
	}
	// Sticky: later successful stages don't clear it.
	if e := c.InjectTaskFailures(0, 0); e != nil {
		t.Fatal(e)
	}
	runNarrowStage(c, 2)
	if c.Err() == nil {
		t.Fatal("abort error must be sticky")
	}
	// Retried attempts appear in the trace and the timeline stays contiguous.
	ev := c.Trace()
	sawRetry := false
	for _, e := range ev {
		if e.Kind == "stage-retry" {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Fatal("no stage-retry trace events")
	}
	for i := 1; i < len(ev); i++ {
		if math.Abs(ev[i].Start-(ev[i-1].Start+ev[i-1].Dur)) > 1e-9 {
			t.Fatalf("trace not contiguous at %d", i)
		}
	}
}

func TestFailClampsToFirstError(t *testing.T) {
	c := New(2, LaptopProfile())
	first := &DataLoss{Node: 1, Detail: "replica gone"}
	c.Fail(first)
	c.Fail(&DataLoss{Node: 0, Detail: "second"})
	if c.Err() != first {
		t.Fatalf("Err = %v, want first error", c.Err())
	}
	var dl *DataLoss
	if !errors.As(c.Err(), &dl) || dl.Node != 1 {
		t.Fatalf("typed error lost: %v", c.Err())
	}
}
