// Package bigtensor reproduces the paper's comparison baseline: the
// BIGtensor library's distributed CP-ALS, which uses the GigaTensor
// algorithm on Hadoop MapReduce (Section 4.3 and Table 2, left column).
//
// Per mode-n MTTKRP the baseline runs a pipeline of MapReduce jobs over the
// mode-n MATRICIZED tensor X(n):
//
//	job 1: join X(n) with factor C along the slowest-varying other mode and
//	       scale: emits (i, j0, X(n)(i,j0) * C(j0 / J, :))
//	job 2: join bin(X(n)) — the 0/1 sparsity pattern, recomputed with a
//	       full pass over the tensor — with factor B along the other mode:
//	       emits (i, j0, B(j0 % J, :))
//	job 3: join both intermediates on (i, j0) and Hadamard-combine
//	job 4: sum the combined rows by i into the MTTKRP result M
//
// plus a map-only pseudo-inverse job and a gram job per factor update.
// Every job pays Hadoop's startup cost and materializes its output to
// replicated HDFS; nothing is cached between jobs — exactly the overheads
// CSTF eliminates. Like BIGtensor, this implementation supports 3rd-order
// tensors only.
package bigtensor

import (
	"fmt"
	"math"

	"cstf/internal/cluster"
	"cstf/internal/cpals"
	"cstf/internal/la"
	"cstf/internal/mapreduce"
	"cstf/internal/rng"
	"cstf/internal/tensor"
)

// frow is a factor-matrix row stored on HDFS (always the RAW, unnormalized
// row; normalization scales are driver state applied on the fly, the
// distributed-cache trick Hadoop implementations use).
type frow struct {
	Idx uint32
	Vec []float64
}

// inter is a stage-1/2 intermediate record: one matricized nonzero
// position with an attached length-R vector.
type inter struct {
	Row uint32
	Col uint64
	Vec []float64
}

// Solver holds the HDFS state of a BIGtensor CP-ALS run.
type Solver struct {
	env    *mapreduce.Env
	dims   []int
	rank   int
	normX  float64
	tf     *mapreduce.File[tensor.Entry]
	ff     []*mapreduce.File[frow]
	scales [][]float64 // per-mode column norms (1 = normalized already)
	grams  []*la.Dense // grams of the NORMALIZED factors
	lambda []float64
}

// PhaseOf mirrors core.PhaseOf for per-mode metric attribution.
func PhaseOf(mode int) string { return fmt.Sprintf("MTTKRP-%d", mode+1) }

// New uploads the tensor and deterministic initial factors to HDFS.
// Only 3rd-order tensors are supported, as in BIGtensor itself.
func New(env *mapreduce.Env, t *tensor.COO, rank int, seed uint64) (*Solver, error) {
	if t.Order() != 3 {
		return nil, fmt.Errorf("bigtensor: only 3rd-order tensors are supported (got order %d)", t.Order())
	}
	if t.NNZ() == 0 {
		return nil, fmt.Errorf("bigtensor: tensor has no nonzeros")
	}
	env.C.SetPhase("Other")
	s := &Solver{
		env:   env,
		dims:  append([]int(nil), t.Dims...),
		rank:  rank,
		normX: t.Norm(),
	}
	s.tf = mapreduce.WriteFile(env, "tensor", t.Entries,
		func(tensor.Entry) int { return tensor.EntryBytes(3) })
	rowSize := func(frow) int { return 8 * (1 + rank) }
	for n := 0; n < 3; n++ {
		init := cpals.InitFactor(seed, n, t.Dims[n], rank)
		rows := make([]frow, t.Dims[n])
		for i := range rows {
			rows[i] = frow{Idx: uint32(i), Vec: init.Row(i)}
		}
		s.ff = append(s.ff, mapreduce.WriteFile(env, fmt.Sprintf("factor-%d", n), rows, rowSize))
		s.scales = append(s.scales, ones(rank))
		s.grams = append(s.grams, init.Gram())
		env.C.ChargeDriver(float64(t.Dims[n] * rank * rank))
	}
	return s, nil
}

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// NewFromFactors rebuilds a Solver from checkpointed state: the tensor is
// re-uploaded and the NORMALIZED factors written to HDFS as-is (scales of 1),
// with their grams recomputed on the driver. Because BIGtensor's iteration
// state is exactly {tensor, factors, scales, grams}, a restored solver
// continues the original ALS trajectory.
func NewFromFactors(env *mapreduce.Env, t *tensor.COO, rank int, factors []*la.Dense, lambda []float64) (*Solver, error) {
	if t.Order() != 3 {
		return nil, fmt.Errorf("bigtensor: only 3rd-order tensors are supported (got order %d)", t.Order())
	}
	if len(factors) != 3 {
		return nil, fmt.Errorf("bigtensor: %d factors for an order-3 tensor", len(factors))
	}
	env.C.SetPhase("Other")
	s := &Solver{
		env:    env,
		dims:   append([]int(nil), t.Dims...),
		rank:   rank,
		normX:  t.Norm(),
		lambda: la.VecClone(lambda),
	}
	s.tf = mapreduce.WriteFile(env, "tensor", t.Entries,
		func(tensor.Entry) int { return tensor.EntryBytes(3) })
	rowSize := func(frow) int { return 8 * (1 + rank) }
	for n := 0; n < 3; n++ {
		f := factors[n]
		if f == nil || f.Rows != t.Dims[n] || f.Cols != rank {
			return nil, fmt.Errorf("bigtensor: factors[%d] must be %dx%d", n, t.Dims[n], rank)
		}
		f = f.Clone()
		rows := make([]frow, f.Rows)
		for i := range rows {
			rows[i] = frow{Idx: uint32(i), Vec: f.Row(i)}
		}
		s.ff = append(s.ff, mapreduce.WriteFile(env, fmt.Sprintf("factor-%d", n), rows, rowSize))
		s.scales = append(s.scales, ones(rank))
		s.grams = append(s.grams, f.Gram())
		env.C.ChargeDriver(float64(t.Dims[n] * rank * rank))
	}
	return s, nil
}

// joinMsg is the tagged-union value of the reduce-side joins in jobs 1-2.
type joinMsg struct {
	isRow bool
	row   []float64
	ent   tensor.MatEntry
}

// MTTKRP runs the four-job GigaTensor MTTKRP along `mode` and returns the
// HDFS file of result rows.
func (s *Solver) MTTKRP(mode int) *mapreduce.File[frow] {
	env := s.env
	rank := s.rank
	env.C.SetPhase(PhaseOf(mode))

	// The two fixed modes, in Table 2's order: job 1 joins the factor of
	// the slowest-varying other mode (C for mode 1), job 2 the other (B).
	var others []int
	for m := 2; m >= 0; m-- {
		if m != mode {
			others = append(others, m)
		}
	}
	strides := tensor.UnfoldStrides(s.dims, mode)

	interSize := func(uint32, joinMsg) int { return 24 + 8*rank }
	outSize := func(inter) int { return 16 + 8*rank }

	runJoin := func(jobName string, joinMode int, scaleByValue bool) *mapreduce.File[inter] {
		env.IncrCounter("tensor-hdfs-reads", 1)
		if !scaleByValue {
			// The bin() pass: a full scan of the tensor just to reproduce
			// its sparsity pattern (the overhead Section 4.3 calls out).
			env.IncrCounter("bin-passes", 1)
		}
		scale := s.scales[joinMode]
		return mapreduce.RunJob2(env, jobName,
			s.tf, func(e tensor.Entry, emit mapreduce.Emit[uint32, joinMsg]) {
				// Matricize on the fly (and, for job 2, bin(): drop the value).
				row, col := tensor.LinearizeEntry(&e, mode, strides)
				me := tensor.MatEntry{Row: row, Col: col, Val: e.Val}
				if !scaleByValue {
					me.Val = 1 // bin(X): preserve the sparsity pattern only
				}
				emit(e.Idx[joinMode], joinMsg{ent: me})
			},
			s.ff[joinMode], func(r frow, emit mapreduce.Emit[uint32, joinMsg]) {
				// Normalize the raw HDFS row with the driver-held scales.
				v := make([]float64, rank)
				for c := range v {
					v[c] = r.Vec[c] / scale[c]
				}
				emit(r.Idx, joinMsg{isRow: true, row: v})
			},
			nil,
			func(k uint32, vals []joinMsg, out func(inter)) {
				var row []float64
				for _, v := range vals {
					if v.isRow {
						row = v.row
						break
					}
				}
				if row == nil {
					return // slice with no factor row (cannot happen: factors are dense)
				}
				for _, v := range vals {
					if v.isRow {
						continue
					}
					vec := make([]float64, rank)
					for c := range vec {
						vec[c] = v.ent.Val * row[c]
					}
					out(inter{Row: v.ent.Row, Col: v.ent.Col, Vec: vec})
				}
			},
			interSize, outSize,
			mapreduce.JobOpts{MapFlops: 1, ReduceFlops: float64(rank)},
		)
	}

	i1 := runJoin(fmt.Sprintf("m%d-join-C", mode+1), others[0], true)
	i2 := runJoin(fmt.Sprintf("m%d-join-B", mode+1), others[1], false)

	// Job 3: combine the two intermediates on (row, col) with a Hadamard
	// product. Both full intermediate datasets shuffle — "double the number
	// of tensor nonzeros" (Section 4.3).
	pairKey := func(e inter) rng.Pair64 { return rng.Pair64{A: uint64(e.Row), B: e.Col} }
	combined := mapreduce.RunJob2(env, fmt.Sprintf("m%d-combine", mode+1),
		i1, func(e inter, emit mapreduce.Emit[rng.Pair64, []float64]) { emit(pairKey(e), e.Vec) },
		i2, func(e inter, emit mapreduce.Emit[rng.Pair64, []float64]) { emit(pairKey(e), e.Vec) },
		nil,
		func(k rng.Pair64, vals [][]float64, out func(frow)) {
			if len(vals) != 2 {
				panic("bigtensor: combine expects exactly two intermediates per nonzero")
			}
			vec := make([]float64, rank)
			for c := range vec {
				vec[c] = vals[0][c] * vals[1][c]
			}
			out(frow{Idx: uint32(k.A), Vec: vec})
		},
		func(rng.Pair64, []float64) int { return 16 + 8*rank },
		func(frow) int { return 8 * (1 + rank) },
		// R flops per input record: the Hadamard product touches each of
		// the two intermediates once (2 x nnz records, 2 x nnz x R flops
		// total, the paper's "final multiplication at STAGE-3").
		mapreduce.JobOpts{ReduceFlops: float64(rank)},
	)

	// Job 4: sum combined rows by target-mode index into M.
	return mapreduce.RunJob(env, fmt.Sprintf("m%d-rowsum", mode+1),
		combined,
		func(r frow, emit mapreduce.Emit[uint32, []float64]) { emit(r.Idx, r.Vec) },
		func(a, b []float64) []float64 {
			out := make([]float64, len(a))
			for i := range out {
				out[i] = a[i] + b[i]
			}
			return out
		},
		func(k uint32, vals [][]float64, out func(frow)) {
			vec := make([]float64, rank)
			for _, v := range vals {
				for c := range vec {
					vec[c] += v[c]
				}
			}
			out(frow{Idx: k, Vec: vec})
		},
		func(uint32, []float64) int { return 8 * (1 + rank) },
		func(frow) int { return 8 * (1 + rank) },
		mapreduce.JobOpts{ReduceFlops: float64(rank)},
	)
}

// Step updates the factor of one mode: MTTKRP, pseudo-inverse application
// (map-only job), gram recomputation (one job), and driver-side
// normalization bookkeeping.
func (s *Solver) Step(mode int) {
	env := s.env
	rank := s.rank
	m := s.MTTKRP(mode)

	env.C.SetPhase("Other")
	v := cpals.HadamardOfGramsExcept(s.grams, mode)
	pinv := la.Pinv(v)
	env.C.ChargeDriver(30 * float64(rank*rank*rank))

	raw := mapreduce.RunMapJob(env, fmt.Sprintf("m%d-update", mode+1), m,
		func(r frow) []frow {
			vec := make([]float64, rank)
			la.VecMatInto(vec, r.Vec, pinv)
			return []frow{{Idx: r.Idx, Vec: vec}}
		},
		func(frow) int { return 8 * (1 + rank) },
		2*float64(rank*rank),
	)
	s.ff[mode] = raw

	// Gram job over the raw rows; column norms are its diagonal, and the
	// gram of the normalized factor follows by scaling — no extra pass.
	gramRaw := mapreduce.RunJob(env, fmt.Sprintf("m%d-gram", mode+1), raw,
		func(r frow, emit mapreduce.Emit[uint8, *la.Dense]) {
			g := la.NewDense(rank, rank)
			for a := 0; a < rank; a++ {
				for b := 0; b < rank; b++ {
					g.Data[a*rank+b] = r.Vec[a] * r.Vec[b]
				}
			}
			emit(0, g)
		},
		func(a, b *la.Dense) *la.Dense {
			for i := range a.Data {
				a.Data[i] += b.Data[i]
			}
			return a
		},
		func(k uint8, vals []*la.Dense, out func(*la.Dense)) {
			g := la.NewDense(rank, rank)
			for _, v := range vals {
				for i := range g.Data {
					g.Data[i] += v.Data[i]
				}
			}
			out(g)
		},
		func(uint8, *la.Dense) int { return 8 * rank * rank },
		func(*la.Dense) int { return 8 * rank * rank },
		mapreduce.JobOpts{MapFlops: float64(rank * rank), ReduceFlops: float64(rank * rank)},
	).Collect()[0]

	norms := make([]float64, rank)
	for c := 0; c < rank; c++ {
		norms[c] = math.Sqrt(gramRaw.At(c, c))
		if norms[c] == 0 {
			norms[c] = 1
		}
	}
	g := la.NewDense(rank, rank)
	for a := 0; a < rank; a++ {
		for b := 0; b < rank; b++ {
			g.Set(a, b, gramRaw.At(a, b)/(norms[a]*norms[b]))
		}
	}
	s.scales[mode] = norms
	s.grams[mode] = g
	s.lambda = norms
}

// Factors collects the normalized factor matrices to the driver.
func (s *Solver) Factors() []*la.Dense {
	out := make([]*la.Dense, 3)
	for n := 0; n < 3; n++ {
		f := la.NewDense(s.dims[n], s.rank)
		for _, r := range s.ff[n].Collect() {
			row := f.Row(int(r.Idx))
			for c := range row {
				row[c] = r.Vec[c] / s.scales[n][c]
			}
		}
		out[n] = f
	}
	return out
}

// Solve runs BIGtensor CP-ALS for a fixed number of iterations (the paper
// runs 20 and reports the per-iteration average; BIGtensor has no cheap
// in-band fit computation, so fits are evaluated once at the end on the
// driver).
func Solve(env *mapreduce.Env, t *tensor.COO, opts cpals.Options) (*cpals.Result, error) {
	if err := opts.Validate(t); err != nil {
		return nil, err
	}
	var s *Solver
	var err error
	if opts.InitFactors != nil {
		s, err = NewFromFactors(env, t, opts.Rank, opts.InitFactors, opts.InitLambda)
	} else {
		s, err = New(env, t, opts.Rank, opts.Seed)
	}
	if err != nil {
		return nil, err
	}
	if err := env.Err(); err != nil {
		return nil, err
	}
	iters := opts.StartIter
	for it := opts.StartIter; it < opts.MaxIters; it++ {
		if err := opts.Interrupted(); err != nil {
			return nil, err
		}
		for n := 0; n < 3; n++ {
			s.Step(n)
			if err := env.Err(); err != nil {
				return nil, err
			}
		}
		iters = it + 1
		// BIGtensor has no cheap in-band fit; report 0 so progress
		// callbacks can still count and stop iterations.
		if opts.OnIteration != nil && opts.OnIteration(it, 0) {
			break
		}
		if opts.CheckpointEvery > 0 && opts.OnCheckpoint != nil && (it+1)%opts.CheckpointEvery == 0 {
			env.C.ChargeCheckpointWrite(checkpointBytes(s.dims, s.rank))
			if err := opts.OnCheckpoint(it+1, s.lambda, s.Factors(), nil); err != nil {
				return nil, err
			}
		}
	}
	res := &cpals.Result{
		Lambda:  s.lambda,
		Factors: s.Factors(),
		Iters:   iters,
	}
	res.Fits = []float64{driverFit(t, res)}
	return res, nil
}

// checkpointBytes is the serialized size of one factor-set checkpoint (all
// factor matrices plus lambda, 8 bytes per element).
func checkpointBytes(dims []int, rank int) float64 {
	var bytes float64
	for _, d := range dims {
		bytes += float64(d) * float64(rank) * 8
	}
	return bytes + float64(rank)*8
}

// driverFit evaluates the model fit with a driver-side pass over the
// nonzeros (diagnostic only; not part of the modeled Hadoop runtime).
func driverFit(t *tensor.COO, res *cpals.Result) float64 {
	grams := make([]*la.Dense, len(res.Factors))
	for n, f := range res.Factors {
		grams[n] = f.Gram()
	}
	modelSq := cpals.ModelNormSq(res.Lambda, grams)
	var inner float64
	for i := range t.Entries {
		e := &t.Entries[i]
		inner += e.Val * res.ReconstructAt(int(e.Idx[0]), int(e.Idx[1]), int(e.Idx[2]))
	}
	normX := t.Norm()
	residSq := normX*normX + modelSq - 2*inner
	if residSq < 0 {
		residSq = 0
	}
	if normX == 0 {
		return 0
	}
	return 1 - math.Sqrt(residSq)/normX
}

// JobsPerIteration returns the number of Hadoop jobs one CP-ALS iteration
// launches (4 MTTKRP jobs + update + gram, per mode).
func JobsPerIteration() int { return 3 * 6 }

// Metrics convenience: expose the underlying cluster for callers holding
// only a Solver.
func (s *Solver) Cluster() *cluster.Cluster { return s.env.C }
