package bigtensor

import (
	"math"
	"testing"

	"cstf/internal/cluster"
	"cstf/internal/cpals"
	"cstf/internal/la"
	"cstf/internal/mapreduce"
	"cstf/internal/tensor"
)

func testEnv(nodes, reducers int) *mapreduce.Env {
	return mapreduce.NewEnv(cluster.New(nodes, cluster.LaptopProfile()), reducers)
}

func TestMTTKRPMatchesSerialAllModes(t *testing.T) {
	x := tensor.GenUniform(3, 400, 15, 12, 18)
	rank := 3
	env := testEnv(4, 8)
	s, err := New(env, x, rank, 5)
	if err != nil {
		t.Fatal(err)
	}
	serial := make([]*la.Dense, 3)
	for n := 0; n < 3; n++ {
		serial[n] = cpals.InitFactor(5, n, x.Dims[n], rank)
	}
	for mode := 0; mode < 3; mode++ {
		mf := s.MTTKRP(mode)
		got := la.NewDense(x.Dims[mode], rank)
		for _, r := range mf.Collect() {
			copy(got.Row(int(r.Idx)), r.Vec)
		}
		want := cpals.MTTKRP(x, mode, serial)
		if d := la.MaxAbsDiff(got, want); d > 1e-9 {
			t.Fatalf("mode %d: BIGtensor MTTKRP differs from serial by %g", mode, d)
		}
	}
}

func TestSolveMatchesSerialFactors(t *testing.T) {
	x := tensor.GenUniform(7, 500, 18, 15, 12)
	opts := cpals.Options{Rank: 2, MaxIters: 3, Seed: 11}
	want, err := cpals.Solve(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(4, 8)
	got, err := Solve(env, x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if la.VecMaxAbsDiff(got.Lambda, want.Lambda) > 1e-6*(1+la.VecNorm(want.Lambda)) {
		t.Fatalf("lambda %v vs serial %v", got.Lambda, want.Lambda)
	}
	for n := range want.Factors {
		if d := la.MaxAbsDiff(got.Factors[n], want.Factors[n]); d > 1e-6 {
			t.Fatalf("factor %d differs from serial by %g", n, d)
		}
	}
	// Final fit diagnostic must agree with the serial fit.
	if math.Abs(got.Fits[0]-want.Fit()) > 1e-6 {
		t.Fatalf("fit %v vs serial %v", got.Fits[0], want.Fit())
	}
}

func TestRejectsNon3rdOrder(t *testing.T) {
	x4 := tensor.GenUniform(1, 100, 5, 5, 5, 5)
	if _, err := New(testEnv(2, 4), x4, 2, 1); err == nil {
		t.Fatal("4th-order tensor must be rejected, as in BIGtensor")
	}
	empty := tensor.New(3, 3, 3)
	if _, err := New(testEnv(2, 4), empty, 2, 1); err == nil {
		t.Fatal("empty tensor must be rejected")
	}
}

func TestJobAndShuffleCounts(t *testing.T) {
	// Table 4: BIGtensor performs 4 shuffles per MTTKRP. Per factor update
	// it launches 6 jobs (4 MTTKRP + update + gram).
	x := tensor.GenUniform(9, 300, 10, 10, 10)
	env := testEnv(2, 4)
	s, err := New(env, x, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	env.C.ResetMetrics()
	s.MTTKRP(0)
	m := env.C.Metrics()
	if got := m.Shuffles[PhaseOf(0)]; got != 4 {
		t.Fatalf("shuffles per MTTKRP = %d, want 4", got)
	}
	if m.Jobs != 4 {
		t.Fatalf("jobs per MTTKRP = %d, want 4", m.Jobs)
	}

	env.C.ResetMetrics()
	s.Step(0)
	if got := env.C.Metrics().Jobs; got != 6 {
		t.Fatalf("jobs per factor update = %d, want 6", got)
	}
	if JobsPerIteration() != 18 {
		t.Fatalf("JobsPerIteration = %d", JobsPerIteration())
	}
}

func TestHadoopSlowerThanItsOwnComputeFloor(t *testing.T) {
	// The modeled time of one BIGtensor MTTKRP must include at least the
	// job startup floor: 4 jobs * JobStartup.
	x := tensor.GenUniform(13, 300, 10, 10, 10)
	env := testEnv(2, 4)
	s, err := New(env, x, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	env.C.ResetMetrics()
	s.MTTKRP(0)
	if env.C.SimTime() < 4*env.C.Profile.JobStartup {
		t.Fatalf("sim time %v below the 4-job startup floor", env.C.SimTime())
	}
}

func TestBinPreservesSparsityNotValues(t *testing.T) {
	// Job 2 must operate on bin(X): results must be independent of the
	// tensor's values for the B-side intermediate. We test indirectly: two
	// tensors with identical sparsity but different values must produce
	// identical stage-2 intermediates, which we observe through the final
	// MTTKRP where factor B rows are all ones.
	dims := []int{6, 5, 4}
	a := tensor.New(dims...)
	b := tensor.New(dims...)
	src := []struct{ i, j, k int }{{0, 1, 2}, {3, 4, 1}, {5, 0, 0}, {2, 2, 3}}
	for n, c := range src {
		a.Append(float64(n+1), c.i, c.j, c.k)
		b.Append(float64(10*(n+1)), c.i, c.j, c.k)
	}
	// With C = ones and B = ones, mode-0 MTTKRP reduces to row sums of the
	// values: scaling values by 10 must scale results by 10 exactly —
	// which can only happen if job 2 contributed the pattern, not values.
	envA, envB := testEnv(1, 2), testEnv(1, 2)
	sa, _ := New(envA, a, 2, 7)
	sb, _ := New(envB, b, 2, 7)
	ra := sa.MTTKRP(0).Collect()
	rb := sb.MTTKRP(0).Collect()
	if len(ra) != len(rb) {
		t.Fatal("row counts differ")
	}
	am := map[uint32][]float64{}
	for _, r := range ra {
		am[r.Idx] = r.Vec
	}
	for _, r := range rb {
		for c := range r.Vec {
			if math.Abs(r.Vec[c]-10*am[r.Idx][c]) > 1e-9*math.Abs(r.Vec[c]) {
				t.Fatalf("value scaling not linear: bin() must have leaked values")
			}
		}
	}
}

func TestBinPassCounters(t *testing.T) {
	// Each MTTKRP performs one bin() pass (job 2) and reads the tensor
	// from HDFS twice (jobs 1-2) — the overheads Section 4.3 attributes
	// to the matricized workflow.
	x := tensor.GenUniform(17, 200, 8, 8, 8)
	env := testEnv(2, 4)
	s, err := New(env, x, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 3; n++ {
		s.MTTKRP(n)
	}
	if got := env.Counter("bin-passes"); got != 3 {
		t.Fatalf("bin passes = %d, want 3 (one per MTTKRP)", got)
	}
	if got := env.Counter("tensor-hdfs-reads"); got != 6 {
		t.Fatalf("tensor reads = %d, want 6 (two per MTTKRP)", got)
	}
}
